"""Experiment runner: dedup, cache lookup, fan-out, result indexing.

``run_experiment``/``run_requests`` are the single entry point every
bench, the CLI, and ``analysis.sweep`` drive: expand a spec, drop
duplicate requests (shared baselines collapse here), serve what the
content-addressed store already has, execute the misses -- serially or
across worker processes -- and hand back an :class:`ExperimentResult`
that knows how to look runs up by (workload, policy, ratio, seed).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Union

from repro.exp import parallel
from repro.exp.cache import ResultStore, get_default_store
from repro.exp.spec import (
    KIND_IDEAL,
    KIND_POLICY,
    KIND_SLOW_ONLY,
    ExperimentSpec,
    RunRequest,
)
from repro.obs import Observability
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.metrics import RunResult
from repro.sim.policy_api import NoTierPolicy, SlowOnlyPolicy


def _replay_requested(request: RunRequest) -> bool:
    from repro.workloads.tracestore import replay_enabled

    if request.replay is not None:
        return request.replay
    return replay_enabled()


def _replay_workload(request: RunRequest, workload):
    """Swap the live workload for a replay of its recorded stream.

    Prefers the pre-recorded ``trace_path`` the runner attached before
    fan-out (one memory-mapped copy shared across worker processes via
    the page cache); unreadable/corrupt paths fall back to the trace
    store, which re-records.  ``OSError`` covers a ``.npt`` deleted or
    evicted mid-campaign -- without it one vanished file would crash a
    worker instead of costing one re-record.  Bit-identity makes this
    swap invisible to results and cache keys alike.
    """
    from repro.workloads import tracestore

    if request.trace_path:
        try:
            return tracestore.ReplayWorkload(tracestore.read_npt(request.trace_path))
        except (tracestore.TraceFormatError, OSError):
            pass
    store = tracestore.get_default_trace_store()
    return store.replay(workload, max_windows=request.max_windows)


def execute_request(request: RunRequest) -> RunResult:
    """Run one request from scratch (no cache involvement)."""
    workload = request.workload.build()
    if _replay_requested(request):
        workload = _replay_workload(request, workload)
    config = request.config if request.config is not None else MachineConfig()
    # Requests asking for telemetry get a fresh bundle (with a bounded
    # trace ring when tracing too); otherwise the machine resolves the
    # plain trace flag itself, exactly as before the obs layer.
    obs = Observability(trace=request.trace) if request.obs else None
    if request.kind == KIND_IDEAL:
        machine = Machine(
            workload=workload,
            policy=NoTierPolicy(),
            config=config,
            ratio="1:1",
            fast_capacity_override=workload.footprint_pages,
            contender=request.contender,
            seed=request.seed,
            trace=request.trace,
            obs=obs,
        )
    elif request.kind == KIND_SLOW_ONLY:
        machine = Machine(
            workload=workload,
            policy=SlowOnlyPolicy(),
            config=config,
            ratio="1:1",
            fast_capacity_override=0,
            contender=request.contender,
            seed=request.seed,
            trace=request.trace,
            obs=obs,
        )
    else:
        machine = Machine(
            workload=workload,
            policy=request.policy.build(),
            config=config,
            ratio=request.ratio,
            contender=request.contender,
            seed=request.seed,
            trace=request.trace,
            obs=obs,
        )
    return machine.run(max_windows=request.max_windows)


#: Environment switch: any non-empty value disables multi-run grouping.
MULTIRUN_ENV = "REPRO_NO_MULTIRUN"

#: One unit of execution: a single request, or a group of requests that
#: one :class:`~repro.sim.runbatch.MultiMachine` simulates in lockstep.
RequestUnit = Union[RunRequest, List[RunRequest]]


def execute_request_group(requests: Sequence[RunRequest]) -> List[RunResult]:
    """Run a seed/ratio group of one (workload, policy) in lockstep.

    All requests replay the same recorded trace; one
    :class:`~repro.sim.runbatch.MultiMachine` steps them together and
    fuses their stall solves.  Results are bit-identical to running each
    request through :func:`execute_request`, in request order -- every
    run still lands in the cache under its own key.  Groups the
    lockstep executor rejects fall back to serial execution.
    """
    from repro.sim.runbatch import MultiMachine
    from repro.workloads import tracestore

    requests = list(requests)
    if len(requests) == 1:
        return [execute_request(requests[0])]
    first = requests[0]
    data = None
    if first.trace_path:
        try:
            data = tracestore.read_npt(first.trace_path)
        except (tracestore.TraceFormatError, OSError):
            data = None
    if data is None:
        store = tracestore.get_default_trace_store()
        _, data = store.ensure_spec(
            first.workload.descriptor(), first.workload.build, first.max_windows
        )
    try:
        machines = [
            Machine(
                workload=tracestore.ReplayWorkload(data),
                policy=req.policy.build(),
                config=req.config if req.config is not None else MachineConfig(),
                ratio=req.ratio,
                contender=req.contender,
                seed=req.seed,
            )
            for req in requests
        ]
        multi = MultiMachine(machines)
    except ValueError:
        return [execute_request(req) for req in requests]
    return multi.run(max_windows=first.max_windows)


def _group_key(request: RunRequest) -> str:
    """Group identity: the request fingerprint with seed and ratio nulled."""
    from repro.exp.cache import content_hash

    fp = request.fingerprint()
    fp["seed"] = None
    fp["ratio"] = None
    return content_hash(fp)


def group_requests(requests: Sequence[RunRequest]) -> List[RequestUnit]:
    """Collapse run-axis-compatible requests into lockstep groups.

    Policy-kind replayed requests that differ only in seed and/or
    capacity ratio share one recorded trace and one machine shape, so
    they become one multi-run unit.  Trace/telemetry requests and
    non-replayed runs stay singles.  Unit order follows first
    appearance, and member order within a group follows request order,
    so fan-out results map back deterministically.  Set
    ``REPRO_NO_MULTIRUN=1`` to force one-request units.
    """
    requests = list(requests)
    if os.environ.get(MULTIRUN_ENV, ""):
        return list(requests)
    groups: Dict[object, List[RunRequest]] = {}
    order: List[object] = []
    for i, req in enumerate(requests):
        if (
            req.kind != KIND_POLICY
            or req.trace
            or req.obs
            or not _replay_requested(req)
        ):
            key: object = ("single", i)
        else:
            key = _group_key(req)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(req)
    units: List[RequestUnit] = []
    for key in order:
        members = groups[key]
        if len(members) >= 2:
            units.append(members)
        else:
            units.append(members[0])
    return units


class ExperimentResult:
    """Executed requests plus lookup helpers keyed on display identities."""

    def __init__(self, requests: Sequence[RunRequest], results: Dict[str, RunResult]):
        self.requests = list(requests)
        self._results = results

    def result(self, request: RunRequest) -> RunResult:
        return self._results[request.key]

    __getitem__ = result

    def find(
        self,
        workload: Optional[str] = None,
        policy: Optional[str] = None,
        ratio: Optional[str] = None,
        seed: Optional[int] = None,
        contender="any",
        kind: str = KIND_POLICY,
    ) -> RunResult:
        """The unique run matching the given display coordinates."""
        matches = []
        for req in self.requests:
            if req.kind != kind:
                continue
            if workload is not None and req.workload.display != workload:
                continue
            if policy is not None and (
                req.kind != KIND_POLICY or req.policy.display != policy
            ):
                continue
            if ratio is not None and kind == KIND_POLICY and req.ratio != ratio:
                continue
            if seed is not None and req.seed != seed:
                continue
            if contender != "any" and req.contender != contender:
                continue
            if req.key not in matches:
                matches.append(req.key)
        if not matches:
            raise KeyError(
                f"no run matches workload={workload!r} policy={policy!r} "
                f"ratio={ratio!r} seed={seed!r} kind={kind!r}"
            )
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous lookup (workload={workload!r} policy={policy!r} "
                f"ratio={ratio!r} seed={seed!r} kind={kind!r}): "
                f"{len(matches)} distinct runs -- pass more coordinates"
            )
        return self._results[matches[0]]

    def baseline(self, workload: str, seed: int = 0, contender=None) -> RunResult:
        return self.find(workload=workload, seed=seed, contender=contender, kind=KIND_IDEAL)

    def slow_only(self, workload: str, seed: int = 0, contender=None) -> RunResult:
        return self.find(
            workload=workload, seed=seed, contender=contender, kind=KIND_SLOW_ONLY
        )

    def slowdown(
        self,
        workload: str,
        policy: str,
        ratio: str,
        seed: int = 0,
        contender=None,
    ) -> float:
        run = self.find(
            workload=workload, policy=policy, ratio=ratio, seed=seed, contender=contender
        )
        return run.slowdown(self.baseline(workload, seed=seed, contender=contender))

    def promotions(
        self,
        workload: str,
        policy: str,
        ratio: str,
        seed: int = 0,
        contender=None,
    ) -> int:
        return self.find(
            workload=workload, policy=policy, ratio=ratio, seed=seed, contender=contender
        ).promoted

    def slowdown_table(
        self, ratio: str, seed: int = 0, contender=None
    ) -> Dict[str, Dict[str, float]]:
        """workload -> {policy -> slowdown} at one ratio."""
        table: Dict[str, Dict[str, float]] = {}
        for req in self.requests:
            if req.kind != KIND_POLICY or req.ratio != ratio or req.seed != seed:
                continue
            if req.contender != contender:
                continue
            wname = req.workload.display
            base = self.baseline(wname, seed=seed, contender=contender)
            table.setdefault(wname, {})[req.policy.display] = self._results[
                req.key
            ].slowdown(base)
        return table


def _prepare_replay(requests: Sequence[RunRequest]) -> None:
    """Record each distinct traffic stream once, before fan-out.

    A stream is keyed by (workload identity, window budget) -- never by
    policy, ratio, or contender -- so one recording serves every run in
    a sweep that shares the workload.  When the trace store is
    disk-backed the recorded ``.npt`` path is attached to the requests;
    forked workers then memory-map one shared copy instead of each
    regenerating (or unpickling) the traffic.  Memory-only stores still
    help: forked children inherit the parent's recordings copy-on-write.
    """
    from repro.exp.cache import content_hash
    from repro.workloads import tracestore

    replaying = [req for req in requests if _replay_requested(req)]
    if not replaying:
        return
    store = tracestore.get_default_trace_store()
    prepared: Dict[tuple, Optional[str]] = {}
    for req in replaying:
        ident = (content_hash(req.workload.descriptor()), req.max_windows)
        if ident not in prepared:
            # Spec-level ensure: an already-recorded stream attaches its
            # .npt path without ever building the live workload.
            _, data = store.ensure_spec(
                req.workload.descriptor(), req.workload.build, req.max_windows
            )
            prepared[ident] = str(data.path) if data.path is not None else None
        if req.trace_path is None and prepared[ident] is not None:
            req.trace_path = prepared[ident]


def run_requests(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Execute a request list through the cache + process pool."""
    requests = list(requests)
    store = store if store is not None else get_default_store()

    unique: List[RunRequest] = []
    seen: Dict[str, RunRequest] = {}
    for req in requests:
        if req.key not in seen:
            seen[req.key] = req
            unique.append(req)

    results: Dict[str, RunResult] = {}
    misses: List[RunRequest] = []
    for req in unique:
        cached = store.get(req.key) if use_cache else None
        if cached is not None:
            results[req.key] = cached
        else:
            misses.append(req)

    _prepare_replay(misses)
    # Multi-run fast path: seed/ratio siblings of one (workload, policy)
    # collapse into lockstep groups; each member still fans back out as
    # its own result and cache entry.
    units = group_requests(misses)
    for unit, result in zip(units, parallel.execute_units(units, jobs=jobs)):
        members = unit if isinstance(unit, list) else [unit]
        run_results = result if isinstance(unit, list) else [result]
        for req, run in zip(members, run_results):
            results[req.key] = run
            if use_cache:
                store.put(req.key, run, fingerprint=req.fingerprint())

    return ExperimentResult(requests, results)


def run_experiment(
    spec: ExperimentSpec,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Expand a declared grid and execute it."""
    return run_requests(spec.expand(), jobs=jobs, store=store, use_cache=use_cache)
