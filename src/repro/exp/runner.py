"""Experiment runner: dedup, cache lookup, fan-out, result indexing.

``run_experiment``/``run_requests`` are the single entry point every
bench, the CLI, and ``analysis.sweep`` drive: expand a spec, drop
duplicate requests (shared baselines collapse here), serve what the
content-addressed store already has, execute the misses -- serially or
across worker processes -- and hand back an :class:`ExperimentResult`
that knows how to look runs up by (workload, policy, ratio, seed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exp import parallel
from repro.exp.cache import ResultStore, get_default_store
from repro.exp.spec import (
    KIND_IDEAL,
    KIND_POLICY,
    KIND_SLOW_ONLY,
    ExperimentSpec,
    RunRequest,
)
from repro.obs import Observability
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.metrics import RunResult
from repro.sim.policy_api import NoTierPolicy, SlowOnlyPolicy


def _replay_requested(request: RunRequest) -> bool:
    from repro.workloads.tracestore import replay_enabled

    if request.replay is not None:
        return request.replay
    return replay_enabled()


def _replay_workload(request: RunRequest, workload):
    """Swap the live workload for a replay of its recorded stream.

    Prefers the pre-recorded ``trace_path`` the runner attached before
    fan-out (one memory-mapped copy shared across worker processes via
    the page cache); unreadable/corrupt paths fall back to the trace
    store, which re-records.  ``OSError`` covers a ``.npt`` deleted or
    evicted mid-campaign -- without it one vanished file would crash a
    worker instead of costing one re-record.  Bit-identity makes this
    swap invisible to results and cache keys alike.
    """
    from repro.workloads import tracestore

    if request.trace_path:
        try:
            return tracestore.ReplayWorkload(tracestore.read_npt(request.trace_path))
        except (tracestore.TraceFormatError, OSError):
            pass
    store = tracestore.get_default_trace_store()
    return store.replay(workload, max_windows=request.max_windows)


def execute_request(request: RunRequest) -> RunResult:
    """Run one request from scratch (no cache involvement)."""
    workload = request.workload.build()
    if _replay_requested(request):
        workload = _replay_workload(request, workload)
    config = request.config if request.config is not None else MachineConfig()
    # Requests asking for telemetry get a fresh bundle (with a bounded
    # trace ring when tracing too); otherwise the machine resolves the
    # plain trace flag itself, exactly as before the obs layer.
    obs = Observability(trace=request.trace) if request.obs else None
    if request.kind == KIND_IDEAL:
        machine = Machine(
            workload=workload,
            policy=NoTierPolicy(),
            config=config,
            ratio="1:1",
            fast_capacity_override=workload.footprint_pages,
            contender=request.contender,
            seed=request.seed,
            trace=request.trace,
            obs=obs,
        )
    elif request.kind == KIND_SLOW_ONLY:
        machine = Machine(
            workload=workload,
            policy=SlowOnlyPolicy(),
            config=config,
            ratio="1:1",
            fast_capacity_override=0,
            contender=request.contender,
            seed=request.seed,
            trace=request.trace,
            obs=obs,
        )
    else:
        machine = Machine(
            workload=workload,
            policy=request.policy.build(),
            config=config,
            ratio=request.ratio,
            contender=request.contender,
            seed=request.seed,
            trace=request.trace,
            obs=obs,
        )
    return machine.run(max_windows=request.max_windows)


class ExperimentResult:
    """Executed requests plus lookup helpers keyed on display identities."""

    def __init__(self, requests: Sequence[RunRequest], results: Dict[str, RunResult]):
        self.requests = list(requests)
        self._results = results

    def result(self, request: RunRequest) -> RunResult:
        return self._results[request.key]

    __getitem__ = result

    def find(
        self,
        workload: Optional[str] = None,
        policy: Optional[str] = None,
        ratio: Optional[str] = None,
        seed: Optional[int] = None,
        contender="any",
        kind: str = KIND_POLICY,
    ) -> RunResult:
        """The unique run matching the given display coordinates."""
        matches = []
        for req in self.requests:
            if req.kind != kind:
                continue
            if workload is not None and req.workload.display != workload:
                continue
            if policy is not None and (
                req.kind != KIND_POLICY or req.policy.display != policy
            ):
                continue
            if ratio is not None and kind == KIND_POLICY and req.ratio != ratio:
                continue
            if seed is not None and req.seed != seed:
                continue
            if contender != "any" and req.contender != contender:
                continue
            if req.key not in matches:
                matches.append(req.key)
        if not matches:
            raise KeyError(
                f"no run matches workload={workload!r} policy={policy!r} "
                f"ratio={ratio!r} seed={seed!r} kind={kind!r}"
            )
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous lookup (workload={workload!r} policy={policy!r} "
                f"ratio={ratio!r} seed={seed!r} kind={kind!r}): "
                f"{len(matches)} distinct runs -- pass more coordinates"
            )
        return self._results[matches[0]]

    def baseline(self, workload: str, seed: int = 0, contender=None) -> RunResult:
        return self.find(workload=workload, seed=seed, contender=contender, kind=KIND_IDEAL)

    def slow_only(self, workload: str, seed: int = 0, contender=None) -> RunResult:
        return self.find(
            workload=workload, seed=seed, contender=contender, kind=KIND_SLOW_ONLY
        )

    def slowdown(
        self,
        workload: str,
        policy: str,
        ratio: str,
        seed: int = 0,
        contender=None,
    ) -> float:
        run = self.find(
            workload=workload, policy=policy, ratio=ratio, seed=seed, contender=contender
        )
        return run.slowdown(self.baseline(workload, seed=seed, contender=contender))

    def promotions(
        self,
        workload: str,
        policy: str,
        ratio: str,
        seed: int = 0,
        contender=None,
    ) -> int:
        return self.find(
            workload=workload, policy=policy, ratio=ratio, seed=seed, contender=contender
        ).promoted

    def slowdown_table(
        self, ratio: str, seed: int = 0, contender=None
    ) -> Dict[str, Dict[str, float]]:
        """workload -> {policy -> slowdown} at one ratio."""
        table: Dict[str, Dict[str, float]] = {}
        for req in self.requests:
            if req.kind != KIND_POLICY or req.ratio != ratio or req.seed != seed:
                continue
            if req.contender != contender:
                continue
            wname = req.workload.display
            base = self.baseline(wname, seed=seed, contender=contender)
            table.setdefault(wname, {})[req.policy.display] = self._results[
                req.key
            ].slowdown(base)
        return table


def _prepare_replay(requests: Sequence[RunRequest]) -> None:
    """Record each distinct traffic stream once, before fan-out.

    A stream is keyed by (workload identity, window budget) -- never by
    policy, ratio, or contender -- so one recording serves every run in
    a sweep that shares the workload.  When the trace store is
    disk-backed the recorded ``.npt`` path is attached to the requests;
    forked workers then memory-map one shared copy instead of each
    regenerating (or unpickling) the traffic.  Memory-only stores still
    help: forked children inherit the parent's recordings copy-on-write.
    """
    from repro.exp.cache import content_hash
    from repro.workloads import tracestore

    replaying = [req for req in requests if _replay_requested(req)]
    if not replaying:
        return
    store = tracestore.get_default_trace_store()
    prepared: Dict[tuple, Optional[str]] = {}
    for req in replaying:
        ident = (content_hash(req.workload.descriptor()), req.max_windows)
        if ident not in prepared:
            # Spec-level ensure: an already-recorded stream attaches its
            # .npt path without ever building the live workload.
            _, data = store.ensure_spec(
                req.workload.descriptor(), req.workload.build, req.max_windows
            )
            prepared[ident] = str(data.path) if data.path is not None else None
        if req.trace_path is None and prepared[ident] is not None:
            req.trace_path = prepared[ident]


def run_requests(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Execute a request list through the cache + process pool."""
    requests = list(requests)
    store = store if store is not None else get_default_store()

    unique: List[RunRequest] = []
    seen: Dict[str, RunRequest] = {}
    for req in requests:
        if req.key not in seen:
            seen[req.key] = req
            unique.append(req)

    results: Dict[str, RunResult] = {}
    misses: List[RunRequest] = []
    for req in unique:
        cached = store.get(req.key) if use_cache else None
        if cached is not None:
            results[req.key] = cached
        else:
            misses.append(req)

    _prepare_replay(misses)
    for req, result in zip(misses, parallel.execute_many(misses, jobs=jobs)):
        results[req.key] = result
        if use_cache:
            store.put(req.key, result, fingerprint=req.fingerprint())

    return ExperimentResult(requests, results)


def run_experiment(
    spec: ExperimentSpec,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Expand a declared grid and execute it."""
    return run_requests(spec.expand(), jobs=jobs, store=store, use_cache=use_cache)
