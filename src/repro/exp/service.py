"""Fleet-scale campaign service: persistent workers, streaming driver.

``run_requests`` fans each sweep out over a fresh ``ProcessPoolExecutor``
-- fine for one figure, wasteful for a campaign of many specs (pool
spin-up per sweep, chunked ``pool.map`` with all-or-nothing error
semantics, one JSON file per result).  This module is the campaign-scale
path the ROADMAP's "simulator as a backend" story runs on:

* :class:`WorkerPool` spawns workers **once per campaign** and feeds
  them one request at a time over per-worker pipes.  Workers replay
  ``.npt`` traces memory-mapped from the shared trace store, so a
  thousand runs over one workload touch one page-cache-warm copy.
* :class:`CampaignDriver` streams any number of request lists (or
  whole :class:`ExperimentSpec` grids) through one pool.  Every request
  carries per-request failure isolation: a worker exception, crash, or
  hang loses *that request* -- recorded in a failure ledger with the
  request's display identity -- never the campaign.  Failed requests
  are retried (fresh worker, same request) up to ``retries`` times.
* Results stream into any :class:`~repro.exp.cache.ResultStore`;
  campaigns default to the SQLite backend
  (:class:`~repro.exp.store.SqliteResultStore`) whose batched commits
  absorb 100k-run write rates.
* Progress is published into a :class:`~repro.obs.MetricsRegistry`
  (queue depth, in-flight count, per-worker utilisation, cache hit
  rate, trace re-record count) that front ends poll for live display.

Results are bit-identical to serial ``run_requests`` on the same
request list: workers run the exact ``execute_request`` path, and the
driver performs the same dedup + cache + replay-preparation steps.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.exp import parallel
from repro.exp.cache import ResultStore, get_default_store
from repro.exp.runner import (
    ExperimentResult,
    RequestUnit,
    _prepare_replay,
    execute_request,
    execute_request_group,
    group_requests,
)
from repro.exp.spec import ExperimentSpec, RunRequest
from repro.obs import MetricsRegistry
from repro.sim.metrics import RunResult

#: Default per-request retry budget (a retry runs on a fresh worker).
DEFAULT_RETRIES = 1

#: Seconds between gauge refreshes / progress callbacks.
DEFAULT_PROGRESS_INTERVAL = 2.0

#: Event-loop poll granularity (seconds).
_TICK = 0.1

#: Failure kinds recorded in the ledger.
FAILURE_EXCEPTION = "exception"  # the request raised inside a worker
FAILURE_CRASH = "crash"          # the worker process died mid-request
FAILURE_TIMEOUT = "timeout"      # the request exceeded the deadline


def _unit_key(unit: RequestUnit) -> str:
    """Hashable identity for one execution unit (attempt accounting)."""
    if isinstance(unit, list):
        return "group:" + unit[0].key
    return unit.key


def _unit_display(unit: RequestUnit) -> str:
    if isinstance(unit, list):
        return f"group[{len(unit)}] {unit[0].display} ..."
    return unit.display


@dataclass
class FailureRecord:
    """One failure event: which request, which way, which attempt."""

    key: str
    display: str
    kind: str
    error: str
    attempt: int
    final: bool = False

    def describe(self) -> str:
        state = "gave up" if self.final else "will retry"
        return f"[{self.kind}] {self.display} (attempt {self.attempt}, {state}): {self.error}"


@dataclass
class CampaignStats:
    """Execution accounting for one driver run."""

    total_requests: int = 0
    unique_requests: int = 0
    cache_hits: int = 0
    executed: int = 0
    failures: int = 0          # failure events (incl. retried ones)
    failed_requests: int = 0   # requests that exhausted their retries
    retries: int = 0
    respawns: int = 0
    warmup_records: int = 0    # traces recorded while preparing replay
    re_records: int = 0        # traces re-recorded during execution
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


class CampaignResult(ExperimentResult):
    """An :class:`ExperimentResult` plus the campaign's failure ledger."""

    def __init__(
        self,
        requests: Sequence[RunRequest],
        results: Dict[str, RunResult],
        ledger: Sequence[FailureRecord],
        stats: CampaignStats,
    ):
        super().__init__(requests, results)
        self.ledger = list(ledger)
        self.stats = stats

    @property
    def failed(self) -> List[FailureRecord]:
        """Final (retry-exhausted) failures only."""
        return [rec for rec in self.ledger if rec.final]

    @property
    def ok(self) -> bool:
        return not self.failed


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


def _worker_main(conn, worker_index: int) -> None:
    """Long-lived worker loop: recv request, execute, send result.

    The per-result payload carries the worker-local trace-store record
    counter so the driver can prove the zero-re-record property across
    process boundaries (a worker that silently regenerated traffic
    would otherwise be invisible to the parent's counters).
    """
    from repro.workloads.tracestore import get_default_trace_store

    # Fork-inherited stores carry the parent's record counter (e.g. the
    # warm-up recordings); report deltas relative to this worker's start
    # so only traffic *this worker* regenerated counts as a re-record.
    records_base = get_default_trace_store().records

    def records_delta() -> int:
        return get_default_trace_store().records - records_base

    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        task_key, request = item
        try:
            # A list is a multi-run unit: one lockstep simulation whose
            # payload is the members' results in member order.
            if isinstance(request, list):
                result = execute_request_group(request)
            else:
                result = execute_request(request)
            payload = (task_key, True, result, records_delta())
        except BaseException as exc:  # noqa: BLE001 - isolate *any* failure
            payload = (task_key, False, f"{type(exc).__name__}: {exc}", records_delta())
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # unpicklable result: report, keep serving
            try:
                conn.send(
                    (task_key, False,
                     f"result not sendable: {type(exc).__name__}: {exc}",
                     records_delta())
                )
            except Exception:
                break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """Parent-side handle: process, pipe, and utilisation accounting."""

    __slots__ = (
        "index", "process", "conn", "task", "busy_since",
        "completed", "busy_seconds", "records_seen",
    )

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.task: Optional[RunRequest] = None
        self.busy_since = 0.0
        self.completed = 0
        self.busy_seconds = 0.0
        #: Last trace-store record counter this worker reported.
        self.records_seen = 0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def utilisation(self, now: float, since: float) -> float:
        elapsed = max(now - since, 1e-9)
        busy = self.busy_seconds + ((now - self.busy_since) if self.busy else 0.0)
        return min(busy / elapsed, 1.0)


class WorkerPool:
    """A fixed-size pool of persistent request-executing processes.

    Workers are spawned once (fork-preferred, exactly as
    :mod:`repro.exp.parallel`) and survive across requests and across
    driver runs; a crashed or killed worker is respawned transparently.
    """

    def __init__(self, jobs: Optional[int] = None, context=None):
        self.jobs = max(1, parallel.resolve_jobs(jobs))
        self._ctx = context if context is not None else parallel._mp_context()
        self.respawns = 0
        self.worker_re_records = 0
        self._next_index = 0
        self.workers: List[_Worker] = [self._spawn() for _ in range(self.jobs)]
        self._closed = False

    def _spawn(self) -> _Worker:
        index = self._next_index
        self._next_index += 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, index), daemon=True,
            name=f"repro-campaign-worker-{index}",
        )
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def respawn(self, worker: _Worker) -> _Worker:
        """Replace a dead/hung worker in place with a fresh process."""
        self.kill(worker)
        fresh = self._spawn()
        self.workers[self.workers.index(worker)] = fresh
        self.respawns += 1
        return fresh

    def kill(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - stubborn child
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def note_records(self, worker: _Worker, reported: int) -> None:
        """Fold a worker's trace-record counter into the pool total."""
        if reported > worker.records_seen:
            self.worker_re_records += reported - worker.records_seen
            worker.records_seen = reported

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Driver side.
# ---------------------------------------------------------------------------


class CampaignDriver:
    """Streams request lists through one persistent worker pool.

    One driver serves a whole campaign: call :meth:`run` (or
    :meth:`run_specs`) as many times as the campaign has phases; the
    pool spins up on first use and is reused until :meth:`close`.

    Failure semantics, per request: an exception inside the worker, a
    worker crash, or a timeout records a :class:`FailureRecord` and --
    while attempts remain -- requeues the request (crashes and timeouts
    get a fresh worker; the dead one is respawned).  A request that
    exhausts ``retries`` is a *final* failure: it is absent from the
    result mapping (lookups raise ``KeyError``) and listed in
    ``CampaignResult.failed``.  Nothing a single request does can lose
    any other request's result.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        retries: int = DEFAULT_RETRIES,
        timeout: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[Callable[[Dict[str, float]], None]] = None,
        progress_interval: float = DEFAULT_PROGRESS_INTERVAL,
        pool: Optional[WorkerPool] = None,
    ):
        self.jobs = max(1, parallel.resolve_jobs(jobs))
        self.store = store
        self.use_cache = use_cache
        self.retries = max(0, int(retries))
        self.timeout = timeout
        self.registry = registry if registry is not None else MetricsRegistry()
        self.progress = progress
        self.progress_interval = progress_interval
        self._pool = pool
        self._started = time.monotonic()

    # -- pool lifecycle ------------------------------------------------------

    @property
    def pool(self) -> Optional[WorkerPool]:
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(jobs=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "CampaignDriver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- running -------------------------------------------------------------

    def run_specs(self, specs: Sequence[ExperimentSpec]) -> CampaignResult:
        """Expand several grids and stream them through the pool as one."""
        requests: List[RunRequest] = []
        for spec in specs:
            requests.extend(spec.expand())
        return self.run(requests)

    def run(self, requests: Sequence[RunRequest]) -> CampaignResult:
        from repro.workloads import tracestore

        t0 = time.monotonic()
        requests = list(requests)
        store = self.store if self.store is not None else get_default_store()
        stats = CampaignStats(total_requests=len(requests))

        unique: List[RunRequest] = []
        seen: Dict[str, RunRequest] = {}
        for req in requests:
            if req.key not in seen:
                seen[req.key] = req
                unique.append(req)
        stats.unique_requests = len(unique)

        results: Dict[str, RunResult] = {}
        misses: List[RunRequest] = []
        for req in unique:
            cached = store.get(req.key) if self.use_cache else None
            if cached is not None:
                results[req.key] = cached
            else:
                misses.append(req)
        stats.cache_hits = len(unique) - len(misses)

        trace_store = tracestore.get_default_trace_store()
        records_before = trace_store.records
        _prepare_replay(misses)
        stats.warmup_records = trace_store.records - records_before
        records_at_execution = trace_store.records

        ledger: List[FailureRecord] = []
        if misses:
            # Multi-run fast path: seed/ratio siblings collapse into
            # lockstep groups (one simulation each); a failed group is
            # retried as independent single requests, so grouping never
            # costs failure isolation.
            units = group_requests(misses)
            if self.jobs <= 1:
                self._run_serial(units, results, store, ledger, stats)
            else:
                self._run_pooled(units, results, store, ledger, stats)

        flush = getattr(store, "flush", None)
        if callable(flush):
            flush()

        stats.re_records = trace_store.records - records_at_execution
        if self._pool is not None:
            stats.re_records += self._pool.worker_re_records
            self._pool.worker_re_records = 0
            stats.respawns = self._pool.respawns
        stats.failures = len(ledger)
        stats.failed_requests = sum(1 for rec in ledger if rec.final)
        stats.elapsed_seconds = time.monotonic() - t0
        self._publish(0, 0, results, stats, force=True)
        return CampaignResult(requests, results, ledger, stats)

    # -- serial path (jobs=1): same semantics, no processes ------------------

    def _run_serial(self, units, results, store, ledger, stats) -> None:
        pending = deque(units)
        attempts: Dict[str, int] = {}
        while pending:
            unit = pending.popleft()
            ukey = _unit_key(unit)
            attempt = attempts.get(ukey, 0) + 1
            attempts[ukey] = attempt
            try:
                result = parallel._run_unit(unit)
            except Exception as exc:
                if isinstance(unit, list):
                    # A group failure is never final: its members requeue
                    # as independent singles with their own attempts.
                    ledger.append(
                        FailureRecord(
                            key=ukey, display=_unit_display(unit),
                            kind=FAILURE_EXCEPTION, error=str(exc),
                            attempt=attempt, final=False,
                        )
                    )
                    stats.retries += 1
                    pending.extend(unit)
                    continue
                final = attempt > self.retries
                ledger.append(
                    FailureRecord(
                        key=ukey, display=unit.display, kind=FAILURE_EXCEPTION,
                        error=str(exc), attempt=attempt, final=final,
                    )
                )
                if not final:
                    stats.retries += 1
                    pending.append(unit)
                continue
            self._complete_unit(unit, result, results, store, stats)
            self._publish(len(pending), 0, results, stats)

    # -- pooled path ---------------------------------------------------------

    def _run_pooled(self, units, results, store, ledger, stats) -> None:
        pool = self._ensure_pool()
        pending = deque(units)
        attempts: Dict[str, int] = {}
        in_flight: Dict[int, RequestUnit] = {}  # worker index -> unit

        def fail(worker, unit, kind, error, requeue_ok=True):
            ukey = _unit_key(unit)
            attempt = attempts[ukey]
            if isinstance(unit, list):
                # A group failure is never final: its members requeue as
                # independent singles with their own attempt budgets.
                ledger.append(
                    FailureRecord(
                        key=ukey, display=_unit_display(unit), kind=kind,
                        error=error, attempt=attempt, final=False,
                    )
                )
                stats.retries += 1
                pending.extend(unit)
                return
            final = attempt > self.retries or not requeue_ok
            ledger.append(
                FailureRecord(
                    key=ukey, display=unit.display, kind=kind,
                    error=error, attempt=attempt, final=final,
                )
            )
            if not final:
                stats.retries += 1
                pending.append(unit)

        def release(worker, now):
            worker.busy_seconds += now - worker.busy_since
            worker.completed += 1
            in_flight.pop(worker.index, None)
            worker.task = None

        while pending or in_flight:
            now = time.monotonic()
            # 1. Feed every idle worker.
            for worker in pool.workers:
                if worker.busy or not pending:
                    continue
                unit = pending.popleft()
                ukey = _unit_key(unit)
                attempts[ukey] = attempts.get(ukey, 0) + 1
                try:
                    worker.conn.send((ukey, unit))
                except (BrokenPipeError, OSError):
                    # Worker died between requests; replace and requeue
                    # without charging the unit an attempt.
                    attempts[ukey] -= 1
                    pending.appendleft(unit)
                    pool.respawn(worker)
                    continue
                except Exception:
                    # Unpicklable request (lambda factory): run it here,
                    # in-process, exactly like parallel's serial fallback.
                    parallel._warn_unpicklable([unit])
                    try:
                        result = parallel._run_unit(unit)
                    except Exception as exc:
                        fail(worker, unit, FAILURE_EXCEPTION, str(exc))
                    else:
                        self._complete_unit(unit, result, results, store, stats)
                    continue
                worker.task = unit
                worker.busy_since = now
                in_flight[worker.index] = unit

            # 2. Wait for any busy worker to report.
            conns = [w.conn for w in pool.workers if w.busy]
            ready = _conn_wait(conns, timeout=_TICK) if conns else []
            now = time.monotonic()
            for conn in ready:
                worker = next(w for w in pool.workers if w.conn is conn)
                unit = worker.task
                try:
                    task_key, ok, payload, records = conn.recv()
                except (EOFError, OSError):
                    release(worker, now)
                    pool.respawn(worker)
                    fail(worker, unit, FAILURE_CRASH,
                         f"worker died mid-request (exit code "
                         f"{worker.process.exitcode})")
                    continue
                pool.note_records(worker, records)
                release(worker, now)
                if ok:
                    self._complete_unit(unit, payload, results, store, stats)
                else:
                    fail(worker, unit, FAILURE_EXCEPTION, payload)

            # 3. Liveness + deadline sweep over the still-busy workers.
            for worker in list(pool.workers):
                if not worker.busy:
                    continue
                unit = worker.task
                if not worker.process.is_alive():
                    release(worker, now)
                    pool.respawn(worker)
                    fail(worker, unit, FAILURE_CRASH,
                         f"worker died mid-request (exit code "
                         f"{worker.process.exitcode})")
                elif (
                    self.timeout is not None
                    and now - worker.busy_since > self.timeout
                ):
                    release(worker, now)
                    pool.respawn(worker)
                    fail(worker, unit, FAILURE_TIMEOUT,
                         f"no result within {self.timeout:.1f}s; worker killed")

            self._publish(len(pending), len(in_flight), results, stats)

    # -- bookkeeping ---------------------------------------------------------

    def _complete(self, req, result, results, store, stats) -> None:
        results[req.key] = result
        stats.executed += 1
        if self.use_cache:
            store.put(req.key, result, fingerprint=req.fingerprint())

    def _complete_unit(self, unit, result, results, store, stats) -> None:
        """Fan a unit's payload out: every member gets its own entry."""
        if isinstance(unit, list):
            for req, run in zip(unit, result):
                self._complete(req, run, results, store, stats)
        else:
            self._complete(unit, result, results, store, stats)

    _last_publish = 0.0

    def _publish(self, queue_depth, in_flight, results, stats, force=False) -> None:
        now = time.monotonic()
        if not force and now - self._last_publish < min(self.progress_interval, 0.5):
            return
        self._last_publish = now
        reg = self.registry
        reg.gauge("campaign/queue_depth", queue_depth)
        reg.gauge("campaign/in_flight", in_flight)
        reg.gauge("campaign/completed", len(results))
        reg.gauge("campaign/executed", stats.executed)
        reg.gauge("campaign/retries", stats.retries)
        touched = stats.cache_hits + stats.executed
        reg.gauge(
            "campaign/cache_hit_rate",
            stats.cache_hits / touched if touched else 0.0,
        )
        reg.gauge("campaign/re_records", stats.re_records)
        pool = self._pool
        if pool is not None:
            since = self._started
            for worker in pool.workers:
                reg.gauge(
                    f"campaign/worker{worker.index}/utilisation",
                    worker.utilisation(now, since),
                )
        if self.progress is not None and (force or now - self._started > 0):
            self.progress(reg.gauges())


def run_campaign(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    retries: int = DEFAULT_RETRIES,
    timeout: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[Dict[str, float]], None]] = None,
) -> CampaignResult:
    """One-shot campaign over ``requests`` (pool torn down afterwards)."""
    with CampaignDriver(
        jobs=jobs, store=store, use_cache=use_cache, retries=retries,
        timeout=timeout, registry=registry, progress=progress,
    ) as driver:
        return driver.run(requests)


__all__ = [
    "CampaignDriver",
    "CampaignResult",
    "CampaignStats",
    "DEFAULT_RETRIES",
    "FAILURE_CRASH",
    "FAILURE_EXCEPTION",
    "FAILURE_TIMEOUT",
    "FailureRecord",
    "WorkerPool",
    "run_campaign",
]
