"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a (workload x policy x ratio x seed x
contender) grid plus the machine configuration; ``expand()`` turns it
into concrete :class:`RunRequest` objects, automatically adding the
shared ideal / slow-only baseline runs each figure normalises against.
Requests are plain data: picklable (so they cross process boundaries)
and fingerprintable (so the cache layer can content-address them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.exp.cache import content_hash, run_fingerprint, workload_fingerprint
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload
from repro.workloads.mlc import MlcContender

#: Window budget matching :meth:`Machine.run`'s default.
DEFAULT_MAX_WINDOWS = 200_000

#: Request kinds: a policy run, or one of the two reference runs.
KIND_POLICY = "policy"
KIND_IDEAL = "ideal"
KIND_SLOW_ONLY = "slow_only"


@dataclass
class WorkloadSpec:
    """A buildable, fingerprintable workload description.

    Registry form (``name`` + kwargs, resolved via ``make_workload``)
    pickles anywhere and is what benches and the CLI should use.
    Factory form wraps an arbitrary zero-argument callable; it must be a
    module-level function for multiprocess execution (lambdas fall back
    to serial execution).
    """

    name: Optional[str] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    factory: Optional[Callable[[], Workload]] = None
    label: Optional[str] = None
    _descriptor: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False, init=False
    )

    def __post_init__(self) -> None:
        if (self.name is None) == (self.factory is None):
            raise ValueError("WorkloadSpec needs exactly one of name= or factory=")

    @classmethod
    def registry(cls, name: str, **kwargs) -> "WorkloadSpec":
        return cls(name=name, kwargs=kwargs)

    @classmethod
    def from_factory(
        cls, factory: Callable[[], Workload], label: Optional[str] = None
    ) -> "WorkloadSpec":
        return cls(factory=factory, label=label)

    def build(self) -> Workload:
        if self.factory is not None:
            return self.factory()
        from repro.workloads.suite import make_workload

        return make_workload(self.name, **self.kwargs)

    def descriptor(self) -> Dict[str, Any]:
        """Cache identity: the fingerprint of the built instance.

        Fingerprinting the *instance* (not the spec) means a registry
        spec and a factory producing identical parameters share cache
        entries -- and that engine-level baseline calls interoperate
        with runner-level ones.
        """
        if self._descriptor is None:
            self._descriptor = workload_fingerprint(self.build())
        return self._descriptor

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        if self.name:
            return self.name
        return str(self.descriptor()["name"])


@dataclass
class PolicySpec:
    """Policy identity: registry name + constructor kwargs + display label."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    @classmethod
    def of(cls, value: Union[str, "PolicySpec"]) -> "PolicySpec":
        return value if isinstance(value, PolicySpec) else cls(name=value)

    def build(self):
        from repro.baselines import make_policy

        return make_policy(self.name, **self.kwargs)

    def descriptor(self) -> Dict[str, Any]:
        from repro.exp.cache import canonical

        return {"name": self.name, "kwargs": canonical(self.kwargs)}

    @property
    def display(self) -> str:
        return self.label or self.name


@dataclass
class RunRequest:
    """One concrete simulation: everything needed to run and to cache it."""

    workload: WorkloadSpec
    policy: Optional[PolicySpec] = None
    ratio: str = "1:1"
    seed: int = 0
    config: Optional[MachineConfig] = None
    contender: Optional[MlcContender] = None
    max_windows: int = DEFAULT_MAX_WINDOWS
    trace: bool = False
    #: Attach a :mod:`repro.obs` bundle to the run so its result carries
    #: ``metrics_summary`` telemetry (and a bounded trace when ``trace``
    #: is also set).  Affects the cache key only when True.
    obs: bool = False
    kind: str = KIND_POLICY
    #: Traffic replay (:mod:`repro.workloads.tracestore`): None follows
    #: the process-wide default, True/False force it for this run.
    #: Replay is bit-identical to live generation, so neither field
    #: below participates in :meth:`fingerprint` -- a replayed and a
    #: live run share one cache identity.
    replay: Optional[bool] = None
    #: Pre-recorded ``.npt`` trace for this run's workload.  Set by the
    #: runner before fan-out so worker processes memory-map one shared
    #: page-cache-warm copy instead of regenerating (or pickling) the
    #: stream.  Unreadable paths fall back to live recording.
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind == KIND_POLICY and self.policy is None:
            raise ValueError("policy runs need a PolicySpec")
        if isinstance(self.policy, str):
            self.policy = PolicySpec.of(self.policy)

    @classmethod
    def ideal(
        cls,
        workload: WorkloadSpec,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
        contender: Optional[MlcContender] = None,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        replay: Optional[bool] = None,
    ) -> "RunRequest":
        """The all-in-DRAM reference run (the slowdown denominator)."""
        return cls(
            workload=workload, config=config, seed=seed, contender=contender,
            max_windows=max_windows, kind=KIND_IDEAL, replay=replay,
        )

    @classmethod
    def slow_only(
        cls,
        workload: WorkloadSpec,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
        contender: Optional[MlcContender] = None,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        replay: Optional[bool] = None,
    ) -> "RunRequest":
        """The all-in-slow-tier reference run (the 'CXL' line)."""
        return cls(
            workload=workload, config=config, seed=seed, contender=contender,
            max_windows=max_windows, kind=KIND_SLOW_ONLY, replay=replay,
        )

    def fingerprint(self) -> Dict[str, Any]:
        is_policy = self.kind == KIND_POLICY
        return run_fingerprint(
            kind=self.kind,
            workload_fp=self.workload.descriptor(),
            policy_fp=self.policy.descriptor() if is_policy else None,
            # Reference runs override capacity, so the ratio is irrelevant
            # to them -- excluding it lets every ratio share one baseline.
            ratio=self.ratio if is_policy else None,
            seed=self.seed,
            config=self.config if self.config is not None else MachineConfig(),
            contender=self.contender,
            max_windows=self.max_windows,
            trace=self.trace,
            obs=self.obs,
        )

    @property
    def key(self) -> str:
        return content_hash(self.fingerprint())

    @property
    def display(self) -> str:
        who = self.policy.display if self.kind == KIND_POLICY else self.kind
        return f"{self.workload.display}/{who}@{self.ratio} seed={self.seed}"


def normalise_workloads(
    workloads: Union[Mapping[str, Any], Sequence[Any]],
) -> List[WorkloadSpec]:
    """Accept dicts of specs/factories/names, or plain sequences."""
    specs: List[WorkloadSpec] = []
    if isinstance(workloads, Mapping):
        items = workloads.items()
    else:
        items = [(None, w) for w in workloads]
    for label, value in items:
        if isinstance(value, WorkloadSpec):
            spec = value
            if label and not spec.label:
                spec.label = label
        elif isinstance(value, str):
            spec = WorkloadSpec.registry(value)
            spec.label = label or value
        elif callable(value):
            spec = WorkloadSpec.from_factory(value, label=label)
        else:
            raise TypeError(f"cannot interpret workload {value!r}")
        specs.append(spec)
    return specs


@dataclass
class ExperimentSpec:
    """A full experiment grid, declared rather than looped by hand."""

    workloads: Union[Mapping[str, Any], Sequence[Any]]
    policies: Sequence[Union[str, PolicySpec]] = ()
    ratios: Sequence[str] = ("1:1",)
    seeds: Sequence[int] = (0,)
    config: Optional[MachineConfig] = None
    contenders: Sequence[Optional[MlcContender]] = (None,)
    max_windows: int = DEFAULT_MAX_WINDOWS
    trace: bool = False
    #: Attach observability to every policy run in the grid (reference
    #: runs stay plain so their cache entries are shared with obs-off
    #: experiments).
    obs: bool = False
    #: Traffic replay for every run in the grid (None = process default).
    replay: Optional[bool] = None
    #: Emit the shared ideal / slow-only reference runs for each
    #: (workload, seed, contender) combination exactly once.
    include_ideal: bool = True
    include_slow_only: bool = True

    def workload_specs(self) -> List[WorkloadSpec]:
        return normalise_workloads(self.workloads)

    def policy_specs(self) -> List[PolicySpec]:
        return [PolicySpec.of(p) for p in self.policies]

    def expand(self) -> List[RunRequest]:
        """The request list: deduplicated baselines first, then the grid."""
        requests: List[RunRequest] = []
        wspecs = self.workload_specs()
        pspecs = self.policy_specs()
        for wspec in wspecs:
            for seed in self.seeds:
                for contender in self.contenders:
                    if self.include_ideal:
                        requests.append(
                            RunRequest.ideal(
                                wspec, config=self.config, seed=seed,
                                contender=contender, max_windows=self.max_windows,
                                replay=self.replay,
                            )
                        )
                    if self.include_slow_only:
                        requests.append(
                            RunRequest.slow_only(
                                wspec, config=self.config, seed=seed,
                                contender=contender, max_windows=self.max_windows,
                                replay=self.replay,
                            )
                        )
        for wspec in wspecs:
            for ratio in self.ratios:
                for pspec in pspecs:
                    for seed in self.seeds:
                        for contender in self.contenders:
                            requests.append(
                                RunRequest(
                                    workload=wspec,
                                    policy=pspec,
                                    ratio=ratio,
                                    seed=seed,
                                    config=self.config,
                                    contender=contender,
                                    max_windows=self.max_windows,
                                    trace=self.trace,
                                    obs=self.obs,
                                    replay=self.replay,
                                )
                            )
        return requests
