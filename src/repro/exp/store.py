"""SQLite-backed result store for campaign-scale sweeps.

The JSON-directory :class:`~repro.exp.cache.ResultStore` is fine for
hundreds of results, but a 100k-run campaign turns one-file-per-hash
into a filesystem stress test: every lookup is an ``open``+``parse``,
every put a ``mkstemp``+``rename``, and a directory listing becomes
unusable.  :class:`SqliteResultStore` keeps the exact ``ResultStore``
contract (and its in-process memory layer) but persists into a single
SQLite database:

* **WAL mode** so campaign writers and readers (e.g. a live dashboard
  or a second campaign over the same store) never block each other,
* **batched commits** -- puts accumulate in an in-memory pending batch
  and are flushed every ``batch_size`` puts (and on ``flush``/``close``
  /interpreter exit), amortising fsync cost across the campaign,
* **read-compatibility** with existing JSON caches: a store pointed at
  a directory that already holds ``<hash>.json`` entries serves them as
  disk hits and migrates them into the database on first touch, so
  switching backends never re-simulates what a previous bench computed.

Results are stored as the same versioned JSON documents the directory
backend writes; stale-version and corrupt rows are deleted on detection
exactly as :meth:`ResultStore._load` unlinks bad files.
"""

from __future__ import annotations

import json
import os
import sqlite3
import weakref
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exp.cache import (
    CACHE_VERSION,
    ResultStore,
    result_from_dict,
    result_to_dict,
)
from repro.sim.metrics import RunResult

#: Default database filename inside a cache directory.
DB_FILENAME = "results.sqlite"

#: Puts buffered before an automatic commit.
DEFAULT_BATCH_SIZE = 64

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key         TEXT PRIMARY KEY,
    version     INTEGER NOT NULL,
    fingerprint TEXT,
    result      TEXT NOT NULL
)
"""


class SqliteResultStore(ResultStore):
    """Content-addressed result store over one SQLite database.

    ``directory`` keeps its :class:`ResultStore` meaning -- the cache
    directory -- and doubles as the home of ``results.sqlite`` plus any
    legacy ``<hash>.json`` entries, which remain readable.  Workers in
    a campaign never touch the database: all puts happen in the driver
    process, so SQLite's single-writer model is never contended from
    within one campaign.
    """

    def __init__(
        self,
        directory: os.PathLike,
        batch_size: int = DEFAULT_BATCH_SIZE,
        db_filename: str = DB_FILENAME,
    ):
        super().__init__(directory)
        if self.directory is None:
            raise ValueError("SqliteResultStore needs a directory")
        self.batch_size = max(1, int(batch_size))
        self.db_path = self.directory / db_filename
        self.directory.mkdir(parents=True, exist_ok=True)
        self._pending: List[Tuple[str, int, Optional[str], str]] = []
        self.commits = 0
        self.json_migrations = 0
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.db_path), timeout=30.0
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._conn.commit()
        # Forked sweep workers inherit the connection object but must
        # never use it; remember who opened it so we can tell.
        self._owner_pid = os.getpid()
        weakref.finalize(self, _finalize_connection, self._conn, self._owner_pid)

    # -- persistence hooks ---------------------------------------------------

    def _load(self, key: str) -> Optional[RunResult]:
        conn = self._usable_conn()
        if conn is not None:
            row = conn.execute(
                "SELECT version, result FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is not None:
                version, blob = row
                doc: Any = None
                try:
                    doc = json.loads(blob)
                except (TypeError, json.JSONDecodeError):
                    pass
                if version == CACHE_VERSION and isinstance(doc, dict):
                    try:
                        return result_from_dict(doc)
                    except (AttributeError, KeyError, TypeError, ValueError):
                        pass
                # Stale-version or corrupt row: delete on detection so it
                # is never parsed again (mirrors ResultStore._discard).
                conn.execute("DELETE FROM results WHERE key = ?", (key,))
                conn.commit()
        # Legacy JSON-directory entry?  Serve it, and migrate it into
        # the database so the next cold process finds it with one query.
        result = super()._load(key)
        if result is not None and conn is not None:
            self._enqueue(key, result, fingerprint=None)
            self.json_migrations += 1
        return result

    def _publish(
        self, key: str, result: RunResult, fingerprint: Optional[dict]
    ) -> None:
        if self._usable_conn() is None:
            return
        self._enqueue(key, result, fingerprint)

    def _enqueue(
        self, key: str, result: RunResult, fingerprint: Optional[dict]
    ) -> None:
        # Serialisation errors must surface (and leave no partial row):
        # dumps happens before the row joins the batch.
        blob = json.dumps(result_to_dict(result))
        fp_blob = None if fingerprint is None else json.dumps(fingerprint)
        self._pending.append((key, CACHE_VERSION, fp_blob, blob))
        if len(self._pending) >= self.batch_size:
            self.flush()

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Commit the pending batch (no-op when empty)."""
        conn = self._usable_conn()
        if conn is None or not self._pending:
            self._pending.clear()
            return
        conn.executemany(
            "INSERT OR REPLACE INTO results (key, version, fingerprint, result) "
            "VALUES (?, ?, ?, ?)",
            self._pending,
        )
        conn.commit()
        self.commits += 1
        self._pending.clear()

    def close(self) -> None:
        """Flush and release the database connection."""
        if self._conn is None:
            return
        try:
            self.flush()
        finally:
            if os.getpid() == self._owner_pid:
                self._conn.close()
            self._conn = None

    def __enter__(self) -> "SqliteResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _usable_conn(self) -> Optional[sqlite3.Connection]:
        """The connection, unless closed or inherited across a fork."""
        if self._conn is None or os.getpid() != self._owner_pid:
            return None
        return self._conn

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Drop both layers: memory, the table, and legacy JSON files."""
        self._pending.clear()
        conn = self._usable_conn()
        if conn is not None:
            conn.execute("DELETE FROM results")
            conn.commit()
        super().clear()

    def count(self) -> int:
        """Stored rows, pending batch included (legacy JSON files aren't)."""
        conn = self._usable_conn()
        if conn is None:
            return 0
        self.flush()
        return int(conn.execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def stats(self) -> Dict[str, int]:
        s = super().stats()
        s["commits"] = self.commits
        s["json_migrations"] = self.json_migrations
        return s

    def summary(self) -> str:
        s = self.stats()
        return (
            f"cache [sqlite:{self.db_path}]: {s['memory_hits']} memory hits, "
            f"{s['disk_hits']} disk hits, {s['misses']} misses, "
            f"{s['puts']} stored in {s['commits']} commits"
        )


def _finalize_connection(conn: sqlite3.Connection, owner_pid: int) -> None:
    if os.getpid() != owner_pid:
        return  # never close a connection inherited through fork
    try:
        conn.close()
    except sqlite3.Error:  # pragma: no cover - interpreter-exit best effort
        pass


def open_store(
    directory: os.PathLike, backend: str = "json", batch_size: int = DEFAULT_BATCH_SIZE
) -> ResultStore:
    """A result store over ``directory`` with the named backend."""
    if backend == "sqlite":
        return SqliteResultStore(directory, batch_size=batch_size)
    if backend == "json":
        return ResultStore(directory)
    raise ValueError(f"unknown result-store backend {backend!r}")
