"""Unified experiment orchestration: specs, caching, parallel sweeps.

The layer every consumer of the simulator goes through:

* :mod:`repro.exp.spec` -- declarative grids (``ExperimentSpec``) and
  single runs (``RunRequest``) with content fingerprints,
* :mod:`repro.exp.cache` -- on-disk content-addressed result store,
  shared with the engine's ideal/slow-only baseline helpers,
* :mod:`repro.exp.parallel` -- process-pool fan-out for cache misses,
* :mod:`repro.exp.runner` -- dedup + cache + execute + indexed results,
* :mod:`repro.exp.store` -- SQLite result-store backend for
  campaign-scale sweeps (batched commits, WAL, JSON-cache compatible),
* :mod:`repro.exp.service` -- persistent worker pool + streaming
  campaign driver with per-request failure isolation,
* :mod:`repro.exp.report` -- the paper's recurring table shapes.
"""

from repro.exp.cache import (
    CACHE_VERSION,
    ResultStore,
    content_hash,
    get_default_store,
    reset_default_store,
    set_default_store,
    workload_fingerprint,
)
from repro.exp.parallel import RequestExecutionError, resolve_jobs
from repro.exp.runner import (
    ExperimentResult,
    execute_request,
    run_experiment,
    run_requests,
)
from repro.exp.service import (
    CampaignDriver,
    CampaignResult,
    FailureRecord,
    WorkerPool,
    run_campaign,
)
from repro.exp.spec import (
    DEFAULT_MAX_WINDOWS,
    ExperimentSpec,
    PolicySpec,
    RunRequest,
    WorkloadSpec,
)
from repro.exp.store import SqliteResultStore, open_store

__all__ = [
    "CACHE_VERSION",
    "CampaignDriver",
    "CampaignResult",
    "DEFAULT_MAX_WINDOWS",
    "ExperimentResult",
    "ExperimentSpec",
    "FailureRecord",
    "PolicySpec",
    "RequestExecutionError",
    "ResultStore",
    "RunRequest",
    "SqliteResultStore",
    "WorkerPool",
    "WorkloadSpec",
    "content_hash",
    "execute_request",
    "get_default_store",
    "open_store",
    "reset_default_store",
    "resolve_jobs",
    "run_campaign",
    "run_experiment",
    "run_requests",
    "set_default_store",
    "workload_fingerprint",
]
