"""Multiprocess fan-out for cache-miss requests.

Runs are embarrassingly parallel: each request carries its own seed and
full configuration, so results are bit-identical whether executed
serially or across a :class:`ProcessPoolExecutor` (a property the test
suite asserts).  The fork start method is preferred so factory-form
workload specs defined in bench modules unpickle in workers; request
lists that cannot pickle at all (lambda factories) fall back to
in-process execution with a :class:`RuntimeWarning` naming the offender.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.sim.metrics import RunResult

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:  # 0 = "all cores", mirroring make -j conventions
        jobs = os.cpu_count() or 1
    return jobs


class RequestExecutionError(RuntimeError):
    """A request failed to execute; the message names which one.

    Raised in place of the original exception so a failure inside a
    many-thousand-run sweep identifies its request instead of
    surfacing as a bare error from an anonymous worker.  The original
    exception rides along as ``__cause__`` (same-process) and in the
    message text (across pickling process boundaries).
    """


def _run_one(request) -> RunResult:
    # Imported lazily: runner imports this module.
    from repro.exp.runner import execute_request

    try:
        return execute_request(request)
    except RequestExecutionError:
        raise
    except Exception as exc:
        label = getattr(request, "display", None) or repr(request)
        raise RequestExecutionError(
            f"request {label} failed: {type(exc).__name__}: {exc}"
        ) from exc


def _run_unit(unit):
    """Execute one unit: a single request, or a multi-run group (list)."""
    if not isinstance(unit, list):
        return _run_one(unit)
    from repro.exp.runner import execute_request_group

    try:
        return execute_request_group(unit)
    except RequestExecutionError:
        raise
    except Exception as exc:
        labels = ", ".join(getattr(r, "display", None) or repr(r) for r in unit)
        raise RequestExecutionError(
            f"request group [{labels}] failed: {type(exc).__name__}: {exc}"
        ) from exc


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _first_unpicklable(requests: Sequence) -> Optional[object]:
    """The first request that cannot cross a process boundary, if any."""
    for request in requests:
        try:
            pickle.dumps(request)
        except Exception:
            return request
    return None


#: Offender identities already warned about in this process; repeated
#: sweeps over the same lambda-factory workload warn once, not once per
#: execute_many call.
_WARNED_UNPICKLABLE: set = set()


def _offender_key(offender) -> str:
    """Identity of an un-picklable request's *type* of offence.

    The culprit is almost always the workload factory (a lambda or
    closure), so key on its qualified name: a sweep expanding one
    factory into hundreds of requests is one offence, not hundreds.
    """
    if isinstance(offender, list) and offender:
        offender = offender[0]
    workload = getattr(offender, "workload", None)
    factory = getattr(workload, "factory", None)
    if factory is not None:
        return f"factory:{getattr(factory, '__qualname__', repr(factory))}"
    return f"type:{type(offender).__qualname__}"


def reset_unpicklable_warnings() -> None:
    """Forget which offenders were warned about (test isolation)."""
    _WARNED_UNPICKLABLE.clear()


def _warn_unpicklable(requests: Sequence) -> None:
    offender = _first_unpicklable(requests)
    key = _offender_key(offender)
    if key not in _WARNED_UNPICKLABLE:
        _WARNED_UNPICKLABLE.add(key)
        label = getattr(offender, "display", None) or repr(offender)
        warnings.warn(
            f"execute_many: request {label!s} is not picklable "
            f"(lambda/closure workload factory?); running all "
            f"{len(requests)} requests serially in-process",
            RuntimeWarning,
            stacklevel=3,
        )


def execute_many(requests: Sequence, jobs: Optional[int] = None) -> List[RunResult]:
    """Execute requests, preserving order; parallel when ``jobs`` > 1."""
    return execute_units(list(requests), jobs=jobs)


def execute_units(units: Sequence, jobs: Optional[int] = None) -> List:
    """Execute units (requests or multi-run groups), preserving order.

    A single-request unit yields its :class:`RunResult`; a group unit
    yields a list of results in member order.
    """
    jobs = resolve_jobs(jobs)
    units = list(units)
    if jobs <= 1 or len(units) <= 1:
        return [_run_unit(u) for u in units]
    workers = min(jobs, len(units))
    # Without an explicit chunksize, pool.map dispatches one request per
    # IPC round-trip; batching amortises pickling over large sweeps
    # while still keeping every worker busy (4 waves per worker).
    chunksize = max(1, len(units) // (workers * 4))
    # No up-front picklability probe: pickling the whole request list
    # twice doubled the serialisation cost of every large sweep just to
    # catch the rare lambda-factory spec.  Let the pool's own dispatch
    # discover the problem and fall back to serial execution then.
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ) as pool:
            return list(pool.map(_run_unit, units, chunksize=chunksize))
    except RequestExecutionError:
        raise  # a request genuinely failed; nothing to fall back to
    except (pickle.PicklingError, TypeError, AttributeError):
        # Lambda/closure factories cannot cross process boundaries.
        _warn_unpicklable(units)
        return [_run_unit(u) for u in units]
