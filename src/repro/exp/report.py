"""Paper-shaped tables over :class:`ExperimentResult` grids.

The benches print three recurring shapes: policies x ratios for one
workload (Figures 4/5), workloads x policies at one ratio (Figure 6 and
the CLI ``bench`` subcommand), and promotion-count tables (Table 2).
These helpers render all three from an executed experiment so benches
declare *what* ran and reuse *how* it is reported.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.tables import format_count, format_table
from repro.exp.runner import ExperimentResult


def ratio_table(
    result: ExperimentResult,
    workload: str,
    policies: Sequence[str],
    ratios: Sequence[str],
    seed: int = 0,
    contender=None,
    slow_only_row: bool = True,
) -> str:
    """Slowdown rows per policy across ratios for one workload."""
    rows = []
    for policy in policies:
        rows.append(
            [policy]
            + [
                f"{result.slowdown(workload, policy, r, seed=seed, contender=contender):.3f}"
                for r in ratios
            ]
        )
    if slow_only_row:
        base = result.baseline(workload, seed=seed, contender=contender)
        cxl = result.slow_only(workload, seed=seed, contender=contender).slowdown(base)
        rows.append(["CXL (all-slow)"] + [f"{cxl:.3f}"] * len(ratios))
    return format_table(["policy"] + list(ratios), rows)


def workload_table(
    result: ExperimentResult,
    workloads: Sequence[str],
    policies: Sequence[str],
    ratio: str,
    seed: int = 0,
    contender=None,
    slow_only_col: bool = True,
) -> str:
    """Slowdown rows per workload across policies at one ratio."""
    rows = []
    for wname in workloads:
        row = [wname] + [
            f"{result.slowdown(wname, p, ratio, seed=seed, contender=contender):.3f}"
            for p in policies
        ]
        if slow_only_col:
            base = result.baseline(wname, seed=seed, contender=contender)
            row.append(
                f"{result.slow_only(wname, seed=seed, contender=contender).slowdown(base):.3f}"
            )
        rows.append(row)
    header = ["workload"] + list(policies) + (["CXL"] if slow_only_col else [])
    return format_table(header, rows)


def promotion_table(
    result: ExperimentResult,
    workload: str,
    policies: Sequence[str],
    ratios: Sequence[str],
    seed: int = 0,
    contender=None,
) -> str:
    """Promotion counts per policy across ratios (the Table-2 shape)."""
    rows = [
        [policy]
        + [
            format_count(
                result.promotions(workload, policy, r, seed=seed, contender=contender)
            )
            for r in ratios
        ]
        for policy in policies
    ]
    return format_table(["policy"] + list(ratios), rows)


def metrics_table(
    result: ExperimentResult,
    workload: str,
    policies: Sequence[str],
    ratio: str,
    seed: int = 0,
    contender=None,
    keys: Optional[Sequence[str]] = None,
) -> str:
    """Observability telemetry (metric x policy) for one workload.

    Requires runs executed with ``obs=True`` (``RunRequest.obs`` /
    ``ExperimentSpec.obs``): each run's ``metrics_summary`` -- which
    survives the cache and worker processes -- supplies the rows.  By
    default every metric any listed policy reported is shown; pass
    ``keys`` to select specific ones.
    """
    summaries = {
        policy: result.find(
            workload=workload, policy=policy, ratio=ratio, seed=seed, contender=contender
        ).metrics_summary
        for policy in policies
    }
    if keys is None:
        names = sorted({name for summary in summaries.values() for name in summary})
    else:
        names = list(keys)
    rows = []
    for name in names:
        row = [name]
        for policy in policies:
            value = summaries[policy].get(name)
            row.append("-" if value is None else f"{value:.4g}")
        rows.append(row)
    return format_table(["metric"] + list(policies), rows)


def cache_summary(store) -> Optional[str]:
    """One-line cache effectiveness report (None without a store)."""
    return store.summary() if store is not None else None
