"""Content-addressed result cache for the experiment layer.

Every run is identified by a *fingerprint*: a canonical JSON document
covering everything that determines its outcome -- workload parameters,
the full :class:`MachineConfig`, policy identity and kwargs, seed,
contender bandwidth parameters, the window budget, and whether tracing
was on.  The SHA-256 of that document is the run's content address.

:class:`ResultStore` layers an in-process dict over an optional on-disk
JSON directory (one file per hash, written atomically), so baselines
computed by one bench process are reused by the next.  The store is
shared with :mod:`repro.sim.engine`'s baseline helpers, which makes the
old module-global ``_baseline_cache`` a strict subset of this layer.

Bump :data:`CACHE_VERSION` whenever the simulator's behaviour changes in
a result-visible way; stale entries are then ignored (and benches can
always be forced fresh with ``REPRO_NO_CACHE=1`` or by deleting the
cache directory).
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.mem.page import tier_from_label, tier_label
from repro.sim.metrics import RunResult, WindowRecord

#: Schema/behaviour version of cached entries.  v2: simulator loop
#: fixes (empty windows count toward the budget, eviction-bar decay,
#: THP promotion-budget clamp) make results differ from v1 entries.
CACHE_VERSION = 2

#: Environment variable selecting a disk directory for the default store.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the disk layer entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"


# -- canonical fingerprints ---------------------------------------------------


def canonical(obj: Any) -> Any:
    """A deterministic, JSON-serialisable view of ``obj``.

    Dataclasses are tagged with their class name so two configs of
    different types never alias; enums collapse to ``Class.NAME``.

    A dataclass may name fields in a ``_canonical_omit_none`` class
    attribute: those are dropped from the document while ``None``, so a
    later-added optional field (e.g. ``MachineConfig.topology``) does
    not change the fingerprint of configs that never set it -- existing
    cache keys survive the field's introduction.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        doc = {"__class__": type(obj).__qualname__}
        omit_none = getattr(type(obj), "_canonical_omit_none", ())
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if value is None and f.name in omit_none:
                continue
            doc[f.name] = canonical(value)
        return doc
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    item = getattr(obj, "item", None)  # numpy scalars
    if callable(item):
        return canonical(item())
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}; experiment specs must be "
        "built from plain data (numbers, strings, dataclasses, enums)"
    )


def workload_fingerprint(workload) -> Dict[str, Any]:
    """Identity of a workload *instance* for cache keying.

    Captures the base parameters every :class:`Workload` carries plus,
    recursively, the members of colocated workloads (whose access mix
    differs even at identical aggregate parameters).

    Replaying workloads (:mod:`repro.workloads.tracestore`) carry the
    fingerprint of the *recorded* workload and expose it via
    ``replay_fingerprint``; honouring it here means a replayed run and a
    live run of the same workload share one cache identity -- replay is
    an execution detail, never a result-key input.
    """
    replay_fp = getattr(workload, "replay_fingerprint", None)
    if replay_fp is not None:
        return copy.deepcopy(replay_fp)
    fp: Dict[str, Any] = {
        "class": type(workload).__qualname__,
        "name": workload.name,
        "seed": workload.seed,
        "footprint_pages": workload.footprint_pages,
        "total_misses": workload.total_misses,
        "misses_per_window": workload.misses_per_window,
        "compute_cycles_per_miss": workload.compute_cycles_per_miss,
    }
    members = getattr(workload, "members", None)
    if members:
        fp["members"] = [workload_fingerprint(m) for m in members]
    return fp


def run_fingerprint(
    kind: str,
    workload_fp: Dict[str, Any],
    policy_fp: Optional[Dict[str, Any]],
    ratio: Optional[str],
    seed: int,
    config,
    contender,
    max_windows: int,
    trace: bool,
    obs: bool = False,
) -> Dict[str, Any]:
    """The complete cache key document for one run.

    Unlike the old engine-local key this includes ``max_windows`` and
    the contender's full parameter set (tier and per-thread bandwidth,
    not just its thread count), so differently-configured runs can never
    alias.

    ``obs`` marks runs that carry an observability bundle (their results
    include telemetry).  It is added to the document *only when set*:
    observability-off runs keep exactly the fingerprint they had before
    the observability layer existed.
    """
    doc = {
        "version": CACHE_VERSION,
        "kind": kind,
        "workload": workload_fp,
        "policy": policy_fp,
        "ratio": ratio,
        "seed": seed,
        "config": canonical(config),
        "contender": canonical(contender),
        "max_windows": max_windows,
        "trace": bool(trace),
    }
    if obs:
        doc["obs"] = True
    return doc


def content_hash(fingerprint: Dict[str, Any]) -> str:
    """SHA-256 content address of a fingerprint document."""
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- RunResult <-> JSON -------------------------------------------------------


def _record_to_dict(rec: WindowRecord) -> Dict[str, Any]:
    return dataclasses.asdict(rec)


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    return {
        "workload": result.workload,
        "policy": result.policy,
        "ratio": result.ratio,
        "runtime_cycles": result.runtime_cycles,
        "windows": result.windows,
        "promoted": result.promoted,
        "demoted": result.demoted,
        "migration_cost_cycles": result.migration_cost_cycles,
        "total_stall_cycles": result.total_stall_cycles,
        "total_misses": result.total_misses,
        "tier_misses": {tier_label(tier): float(v) for tier, v in result.tier_misses.items()},
        "empty_windows": result.empty_windows,
        "trace": (
            None if result.trace is None else [_record_to_dict(r) for r in result.trace]
        ),
        "workload_metrics": result.workload_metrics,
        "fast_pages": result.fast_pages,
        "metrics_summary": result.metrics_summary,
    }


def result_from_dict(doc: Dict[str, Any]) -> RunResult:
    trace = doc.get("trace")
    return RunResult(
        workload=doc["workload"],
        policy=doc["policy"],
        ratio=doc["ratio"],
        runtime_cycles=doc["runtime_cycles"],
        windows=doc["windows"],
        promoted=doc["promoted"],
        demoted=doc["demoted"],
        migration_cost_cycles=doc["migration_cost_cycles"],
        total_stall_cycles=doc["total_stall_cycles"],
        total_misses=doc["total_misses"],
        tier_misses={tier_from_label(name): v for name, v in doc["tier_misses"].items()},
        empty_windows=doc.get("empty_windows", 0),
        trace=None if trace is None else [WindowRecord(**rec) for rec in trace],
        workload_metrics=doc.get("workload_metrics") or {},
        fast_pages=doc.get("fast_pages"),
        metrics_summary=doc.get("metrics_summary") or {},
    )


# -- the store ----------------------------------------------------------------


class ResultStore:
    """Two-tier (memory + optional disk) content-addressed result cache."""

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory else None
        self._memory: Dict[str, RunResult] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        cached = self._memory.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        result = self._load(key)
        if result is not None:
            self._memory[key] = result
            self.disk_hits += 1
            return result
        self.misses += 1
        return None

    def _load(self, key: str) -> Optional[RunResult]:
        """Read ``key`` from the persistent layer (None = miss).

        Unreadable, corrupt, stale-version, or schema-incomplete files
        are all misses -- and all except transiently-unreadable ones are
        unlinked on detection, so a bad file is parsed (at most) once
        instead of on every lookup until something overwrites it.
        """
        if self.directory is None:
            return None
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            doc = json.loads(path.read_text())
        except OSError:
            return None  # transient (perms, races); leave the file alone
        except json.JSONDecodeError:
            self._discard(path)
            return None
        if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION:
            self._discard(path)  # stale version: never readable again
            return None
        try:
            return result_from_dict(doc["result"])
        except (AttributeError, KeyError, TypeError, ValueError):
            # Valid JSON but not a complete result document (foreign
            # file, interrupted by an old non-atomic writer): a miss,
            # not a KeyError out of get().
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, result: RunResult, fingerprint: Optional[dict] = None) -> None:
        self._memory[key] = result
        self.puts += 1
        self._publish(key, result, fingerprint)

    def _publish(
        self, key: str, result: RunResult, fingerprint: Optional[dict]
    ) -> None:
        """Write ``key`` to the persistent layer (no-op when memory-only)."""
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "result": result_to_dict(result),
        }
        # Atomic publish: concurrent writers of the same key race benignly.
        # I/O errors (full disk, read-only cache dir) degrade to a cache
        # that simply does not persist; anything else -- e.g. a TypeError
        # from an unserialisable metrics value -- surfaces to the caller.
        # Either way the temp file never outlives the attempt.
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(doc, fh)
                os.replace(tmp, self._path(key))
            except OSError:
                pass
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._memory.clear()

    def clear(self) -> None:
        """Drop both layers, deleting on-disk entries."""
        self.clear_memory()
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def stats(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
        }

    def summary(self) -> str:
        where = str(self.directory) if self.directory else "memory-only"
        s = self.stats()
        return (
            f"cache [{where}]: {s['memory_hits']} memory hits, "
            f"{s['disk_hits']} disk hits, {s['misses']} misses, {s['puts']} stored"
        )


# -- default-store plumbing ---------------------------------------------------

_default_store: Optional[ResultStore] = None


def get_default_store() -> ResultStore:
    """The process-wide store used by engine baselines and the runner."""
    global _default_store
    if _default_store is None:
        directory = None
        if not os.environ.get(NO_CACHE_ENV):
            directory = os.environ.get(CACHE_DIR_ENV) or None
        _default_store = ResultStore(directory)
    return _default_store


def set_default_store(store: ResultStore) -> ResultStore:
    global _default_store
    _default_store = store
    return store


def reset_default_store() -> None:
    """Forget the configured store; the next use re-reads the environment."""
    global _default_store
    _default_store = None
