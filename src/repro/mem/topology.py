"""Ordered tier graphs: N-tier hierarchies with optional compression.

The simulator's original core hardwired the paper's two-tier DRAM/CXL
pair.  A :class:`TierTopology` generalises that to an ordered list of
tiers (index 0 is the fastest; demotion flows toward higher indices),
each described by a :class:`TierDef`:

* a :class:`~repro.common.units.TierSpec` (latency / bandwidth), and
* an optional :class:`CompressionSpec` modelling a compressed tier
  (e.g. a zswap-style compressed CXL tier): per-page compressibility
  scales the tier's *effective* capacity -- a page with compression
  ratio ``r`` consumes ``1/r`` physical page frames -- and the
  (de)compression latency is folded into the tier's access latency.

Topologies also carry the demotion routing mode (``"through"`` cascades
victims one tier down; ``"direct"`` sends them straight to the bottom
tier), making the multi-hop ablation a pure configuration choice.

A two-tier, uncompressed, demote-through topology is *the default
pair*: :class:`repro.sim.config.MachineConfig` normalises it away so
the legacy code path (and every cache fingerprint and golden digest)
stays bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.units import CXL_SPEC, DRAM_SPEC, NVME_SPEC, TierSpec

#: Demotion routing modes (see :class:`TierTopology`).
DEMOTION_MODES = ("through", "direct")


@dataclass(frozen=True)
class CompressionSpec:
    """Per-page compressibility model for a compressed memory tier.

    Pages stored in a compressed tier occupy ``1/ratio_p`` physical
    page frames, where ``ratio_p`` is drawn per page from a uniform
    distribution around :attr:`ratio` (width ``spread`` as a fraction of
    the mean, floored at 1.0 -- a page never grows).  The draw is
    seeded, so a page's compressibility is a stable property of the
    run, not of its migration history.  Every access to the tier pays
    :attr:`latency_ns` of (de)compression latency on top of the media
    latency.
    """

    #: Mean compression ratio (2.0 = pages halve on average).
    ratio: float = 2.0
    #: Page-to-page variation as a fraction of ``ratio`` (0 = uniform).
    spread: float = 0.5
    #: Added (de)compression latency per access, in nanoseconds.
    latency_ns: float = 40.0
    #: Seed of the deterministic per-page compressibility stream.
    seed: int = 1234

    def __post_init__(self) -> None:
        if not (math.isfinite(self.ratio) and self.ratio >= 1.0):
            raise ValueError("compression ratio must be >= 1")
        if not (0.0 <= self.spread < 1.0):
            raise ValueError("compression spread must be in [0, 1)")
        if self.latency_ns < 0.0:
            raise ValueError("compression latency must be non-negative")

    def page_ratios(self, footprint_pages: int) -> np.ndarray:
        """Deterministic per-page compression ratios (all >= 1)."""
        rng = np.random.default_rng(self.seed)
        lo = max(self.ratio * (1.0 - self.spread), 1.0)
        hi = max(self.ratio * (1.0 + self.spread), 1.0)
        return rng.uniform(lo, hi, size=footprint_pages)

    def page_frame_costs(self, footprint_pages: int) -> np.ndarray:
        """Physical page frames consumed per stored page (= 1/ratio)."""
        return 1.0 / self.page_ratios(footprint_pages)


@dataclass(frozen=True)
class TierDef:
    """One tier of a topology: media spec plus optional compression."""

    spec: TierSpec
    compression: Optional[CompressionSpec] = None

    def effective_spec(self) -> TierSpec:
        """The spec the stall model sees: compression latency folded in.

        The (de)compression cost is charged at tier granularity -- every
        access to a compressed tier pays the mean codec latency -- which
        keeps the fixed-point solver's per-tier structure intact.
        """
        if self.compression is None:
            return self.spec
        return TierSpec(
            name=f"{self.spec.name}+z",
            latency_ns=self.spec.latency_ns + self.compression.latency_ns,
            bandwidth_gbps=self.spec.bandwidth_gbps,
        )


@dataclass(frozen=True)
class TierTopology:
    """An ordered tier graph, fastest first.

    ``demotion`` selects multi-hop routing: ``"through"`` demotes a
    victim from tier ``t`` to tier ``t+1`` (cascading further demotions
    down the chain when the intermediate tier is full), ``"direct"``
    demotes straight to the bottom tier.  The two coincide for two
    tiers, so the ablation is a no-op on the default pair.
    """

    tiers: Tuple[TierDef, ...]
    demotion: str = "through"

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers", tuple(self.tiers))
        if len(self.tiers) < 2:
            raise ValueError("a topology needs at least two tiers")
        if self.demotion not in DEMOTION_MODES:
            raise ValueError(
                f"demotion must be one of {DEMOTION_MODES}, got {self.demotion!r}"
            )

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    def effective_specs(self) -> List[TierSpec]:
        """Per-tier specs with compression latency folded in."""
        return [td.effective_spec() for td in self.tiers]

    def page_frame_costs(self, footprint_pages: int) -> List[Optional[np.ndarray]]:
        """Per-tier page-frame cost arrays (None = 1 frame per page)."""
        return [
            None if td.compression is None else td.compression.page_frame_costs(footprint_pages)
            for td in self.tiers
        ]

    def is_default_pair(self, fast_spec: TierSpec, slow_spec: TierSpec) -> bool:
        """True when this topology is exactly the legacy two-tier pair."""
        return (
            self.num_tiers == 2
            and self.demotion == "through"
            and self.tiers[0] == TierDef(fast_spec)
            and self.tiers[1] == TierDef(slow_spec)
        )


def default_topology(
    fast_spec: TierSpec = DRAM_SPEC, slow_spec: TierSpec = CXL_SPEC
) -> TierTopology:
    """The legacy two-tier pair expressed as a topology."""
    return TierTopology(tiers=(TierDef(fast_spec), TierDef(slow_spec)))


#: Named topologies selectable from the CLI (``--topology``).
_TOPOLOGY_BUILDERS = {
    # The paper's testbed pair (normalises to the legacy path).
    "dram-cxl": lambda: (TierDef(DRAM_SPEC), TierDef(CXL_SPEC)),
    # Three uncompressed tiers.
    "dram-cxl-nvme": lambda: (TierDef(DRAM_SPEC), TierDef(CXL_SPEC), TierDef(NVME_SPEC)),
    # DRAM -> compressed CXL -> NVMe: the HybridTier-style hierarchy.
    "dram-cxlz-nvme": lambda: (
        TierDef(DRAM_SPEC),
        TierDef(CXL_SPEC, compression=CompressionSpec()),
        TierDef(NVME_SPEC),
    ),
}

TOPOLOGY_NAMES = tuple(sorted(_TOPOLOGY_BUILDERS))


def make_topology(name: str, demotion: str = "through") -> TierTopology:
    """Build a named topology (see :data:`TOPOLOGY_NAMES`)."""
    try:
        builder = _TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; known: {', '.join(TOPOLOGY_NAMES)}"
        ) from None
    return TierTopology(tiers=builder(), demotion=demotion)
