"""Page-level abstractions: tiers, huge-page geometry, object regions.

Pages are identified by dense integer ids (virtual page numbers within a
workload's footprint); all bulk state lives in numpy arrays indexed by
page id, which keeps simulations of multi-GB footprints cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.common.units import PAGES_PER_HUGE_PAGE


class Tier(IntEnum):
    """The two canonical tier indices of the default DRAM/CXL pair.

    Tier indices are plain integers ordered fast-to-slow; the enum names
    the first two so existing two-tier code (and serialised results)
    keep their FAST/SLOW vocabulary.  N-tier topologies address tiers
    beyond index 1 as bare ints -- ``IntEnum`` hashes and compares as
    its value, so enum and int keys interoperate in dicts and arrays.
    """

    FAST = 0
    SLOW = 1


#: Placement value for pages that have not been touched yet.
UNALLOCATED = -1


def tier_key(index: int):
    """Canonical dict/list key for a tier index.

    Indices 0 and 1 map to the :class:`Tier` enums (so two-tier
    consumers and serialisers see exactly the objects they always did);
    deeper tiers stay plain ints.
    """
    index = int(index)
    if 0 <= index <= 1:
        return Tier(index)
    return index


def tier_label(index: int) -> str:
    """Stable serialisation label for a tier index (``FAST``/``SLOW``/``TIER2``...)."""
    index = int(index)
    if 0 <= index <= 1:
        return Tier(index).name
    return f"TIER{index}"


def tier_from_label(label: str):
    """Inverse of :func:`tier_label`."""
    if label in Tier.__members__:
        return Tier[label]
    if label.startswith("TIER"):
        return int(label[4:])
    raise ValueError(f"unknown tier label {label!r}")

#: log2(pages per 2MB huge page) -- used to shift 4KB page ids to huge ids.
HUGE_SHIFT = int(np.log2(PAGES_PER_HUGE_PAGE))


def huge_page_of(pages: np.ndarray) -> np.ndarray:
    """Huge-page ids covering each 4KB page id."""
    return np.asarray(pages, dtype=np.int64) >> HUGE_SHIFT


def expand_huge_pages(huge_ids: np.ndarray, footprint_pages: int) -> np.ndarray:
    """All 4KB page ids belonging to the given huge pages, clipped to footprint.

    Used by THP-aware migration: when a critical 4KB page is selected and
    THP is enabled, the whole surrounding 2MB region migrates (§5.2).
    """
    huge_ids = np.unique(np.asarray(huge_ids, dtype=np.int64))
    base = huge_ids << HUGE_SHIFT
    offsets = np.arange(PAGES_PER_HUGE_PAGE, dtype=np.int64)
    pages = (base[:, None] + offsets[None, :]).ravel()
    return pages[pages < footprint_pages]


@dataclass(frozen=True)
class ObjectRegion:
    """A named contiguous allocation inside a workload's address space.

    Soar (§5.4) places whole objects, so workloads describe their major
    allocations as regions: ``[start_page, start_page + num_pages)``.
    """

    name: str
    start_page: int
    num_pages: int

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise ValueError("object region must span at least one page")
        if self.start_page < 0:
            raise ValueError("object region start must be non-negative")

    @property
    def end_page(self) -> int:
        return self.start_page + self.num_pages

    def pages(self) -> np.ndarray:
        """All 4KB page ids in the region."""
        return np.arange(self.start_page, self.end_page, dtype=np.int64)

    def contains(self, page: int) -> bool:
        return self.start_page <= page < self.end_page
