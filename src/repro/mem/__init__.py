"""Memory substrate: pages, tiers, placement, LRU, huge-page geometry."""

from repro.mem.page import (
    HUGE_SHIFT,
    ObjectRegion,
    Tier,
    UNALLOCATED,
    expand_huge_pages,
    huge_page_of,
)
from repro.mem.tiered import CapacityError, TieredMemory

__all__ = [
    "CapacityError",
    "HUGE_SHIFT",
    "ObjectRegion",
    "Tier",
    "TieredMemory",
    "UNALLOCATED",
    "expand_huge_pages",
    "huge_page_of",
]
