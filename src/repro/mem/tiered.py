"""Two-tier memory with placement tracking, first-touch allocation, and LRU.

``TieredMemory`` models the fast tier (local DRAM) and slow tier
(NUMA/CXL) of the paper's testbed.  It owns:

* per-page placement (fast / slow / unallocated),
* per-tier capacity accounting,
* an approximate LRU clock per page (fed by the access stream, standing
  in for the kernel's (MG)LRU lists that PACT's eager demotion consults),
* first-touch allocation (fill the fast tier, then spill to slow), which
  is also the paper's NoTier baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.units import TierSpec
from repro.mem.page import Tier, UNALLOCATED


class CapacityError(ValueError):
    """Raised when tier capacities cannot hold the requested placement."""


class TieredMemory:
    """Placement state for a footprint of ``footprint_pages`` 4KB pages."""

    def __init__(
        self,
        footprint_pages: int,
        fast_capacity_pages: int,
        slow_capacity_pages: int,
        fast_spec: TierSpec,
        slow_spec: TierSpec,
    ):
        if footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        if fast_capacity_pages < 0 or slow_capacity_pages < 0:
            raise ValueError("capacities must be non-negative")
        if fast_capacity_pages + slow_capacity_pages < footprint_pages:
            raise CapacityError(
                "tier capacities (%d + %d pages) cannot hold footprint (%d pages)"
                % (fast_capacity_pages, slow_capacity_pages, footprint_pages)
            )
        self.footprint_pages = footprint_pages
        self.capacity = {Tier.FAST: fast_capacity_pages, Tier.SLOW: slow_capacity_pages}
        self.spec = {Tier.FAST: fast_spec, Tier.SLOW: slow_spec}
        self.placement = np.full(footprint_pages, UNALLOCATED, dtype=np.int8)
        self.used = {Tier.FAST: 0, Tier.SLOW: 0}
        #: Window index of each page's most recent access (LRU clock).
        self.last_touch = np.full(footprint_pages, -1, dtype=np.int64)
        #: Decayed per-page access intensity -- the simulator's stand-in
        #: for the kernel's (MG)LRU generations: pages accessed every
        #: window stay "active", pages that go quiet decay toward zero
        #: and become demotion victims.
        self.activity = np.zeros(footprint_pages, dtype=float)
        #: Per-window decay applied to ``activity`` (lazily).
        self.activity_decay = 0.7
        self._last_decay_window = 0
        #: Monotonic stamp of when each page last entered its tier --
        #: physical LRU-list position for FIFO-style reclaim.
        self.arrival = np.zeros(footprint_pages, dtype=np.int64)
        self._arrival_counter = 0
        #: Pages pinned in the fast tier (Nomad shadow copies, etc.).
        self._pinned = np.zeros(footprint_pages, dtype=bool)

    # -- queries ------------------------------------------------------------

    def free_pages(self, tier: Tier) -> int:
        return self.capacity[tier] - self.used[tier]

    def tier_of(self, pages: np.ndarray) -> np.ndarray:
        """Placement of each page id (UNALLOCATED for untouched pages)."""
        return self.placement[np.asarray(pages, dtype=np.int64)]

    def pages_in_tier(self, tier: Tier) -> np.ndarray:
        """All page ids currently resident in ``tier``."""
        return np.flatnonzero(self.placement == int(tier)).astype(np.int64)

    def resident_fraction(self, tier: Tier) -> float:
        """Fraction of the allocated footprint resident in ``tier``."""
        allocated = self.used[Tier.FAST] + self.used[Tier.SLOW]
        if allocated == 0:
            return 0.0
        return self.used[tier] / allocated

    # -- allocation and access tracking --------------------------------------

    def allocate_first_touch(
        self, pages: np.ndarray, prefer: Tier = Tier.FAST
    ) -> "tuple[int, int]":
        """Allocate any unallocated pages, filling ``prefer`` first.

        Returns (pages placed in preferred tier, pages spilled to the
        other tier).  This mirrors first-touch NUMA allocation: the fast
        node absorbs allocations until full, after which pages land in
        the slow node.
        """
        pages = np.asarray(pages, dtype=np.int64)
        fresh = pages[self.placement[pages] == UNALLOCATED]
        if fresh.size == 0:
            return (0, 0)
        # Dedupe while preserving the caller's allocation order -- the
        # order decides which pages land in the preferred tier.
        _, first_idx = np.unique(fresh, return_index=True)
        fresh = fresh[np.sort(first_idx)]
        other = Tier.SLOW if prefer == Tier.FAST else Tier.FAST
        take = min(self.free_pages(prefer), fresh.size)
        spill = fresh.size - take
        if spill > self.free_pages(other):
            raise CapacityError("no capacity left for first-touch allocation")
        self.placement[fresh[:take]] = int(prefer)
        self.placement[fresh[take:]] = int(other)
        self.used[prefer] += take
        self.used[other] += spill
        # Allocation order is LRU-list arrival order.
        self.arrival[fresh] = self._arrival_counter + np.arange(1, fresh.size + 1)
        self._arrival_counter += fresh.size
        return (int(take), int(spill))

    def touch(
        self, pages: np.ndarray, window: int, counts: Optional[np.ndarray] = None
    ) -> None:
        """Record accesses during ``window`` (feeds LRU clock and activity).

        ``counts`` gives per-page access counts for the window; when
        omitted, each page counts as one touch.
        """
        pages = np.asarray(pages, dtype=np.int64)
        self._decay_activity(window)
        self.last_touch[pages] = window
        if counts is None:
            self.activity[pages] += 1.0
        else:
            np.add.at(self.activity, pages, np.asarray(counts, dtype=float))

    def _decay_activity(self, window: int) -> None:
        steps = window - self._last_decay_window
        if steps > 0:
            self.activity *= self.activity_decay**steps
            self._last_decay_window = window

    def mean_activity(self, tier: Tier) -> float:
        """Average access intensity of the tier's resident pages."""
        resident = self.pages_in_tier(tier)
        if resident.size == 0:
            return 0.0
        return float(self.activity[resident].mean())

    # -- migration primitives -------------------------------------------------

    def move(self, pages: np.ndarray, dst: Tier) -> np.ndarray:
        """Move pages to ``dst``, honouring capacity; returns pages moved.

        Pages already in ``dst``, unallocated pages, and pages beyond the
        destination's free capacity are silently skipped (the kernel's
        ``move_pages()`` likewise partially succeeds).
        """
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        src = Tier.SLOW if dst == Tier.FAST else Tier.FAST
        movable = pages[self.placement[pages] == int(src)]
        if dst == Tier.SLOW:
            movable = movable[~self._pinned[movable]]
        room = self.free_pages(dst)
        if movable.size > room:
            movable = movable[:room]
        if movable.size:
            self.placement[movable] = int(dst)
            self.used[src] -= movable.size
            self.used[dst] += movable.size
            self._arrival_counter += 1
            self.arrival[movable] = self._arrival_counter
        return movable

    def lru_victims(
        self,
        tier: Tier,
        count: int,
        protect: Optional[np.ndarray] = None,
        max_activity: Optional[float] = None,
        fifo: bool = False,
    ) -> np.ndarray:
        """Up to ``count`` reclaim victims resident in ``tier``.

        By default victims are ranked by decayed access intensity
        (coldest first).  ``protect`` pages (e.g. just-promoted ones)
        are excluded.  ``max_activity`` restricts eligibility to
        genuinely inactive pages -- a page accessed every window never
        reaches the kernel's inactive list, so it can never be a victim;
        ``None`` allows any resident page (aggressive watermark-style
        reclaim).  ``fifo`` instead ranks by tier-arrival order --
        physical LRU-list position, which is what simple watermark
        reclaim actually walks, hot pages included.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        resident = self.pages_in_tier(tier)
        if tier == Tier.SLOW:
            resident = resident[~self._pinned[resident]]
        if protect is not None and protect.size:
            resident = resident[~np.isin(resident, protect)]
        if max_activity is not None:
            resident = resident[self.activity[resident] <= max_activity]
        if resident.size == 0:
            return resident
        keys = self.arrival[resident] if fifo else self.activity[resident]
        if count >= resident.size:
            order = np.argsort(keys, kind="stable")
            return resident[order]
        part = np.argpartition(keys, count)[:count]
        order = np.argsort(keys[part], kind="stable")
        return resident[part[order]]

    # -- pinning (used by non-exclusive tiering a la Nomad) -------------------

    def pin(self, pages: np.ndarray) -> None:
        self._pinned[np.asarray(pages, dtype=np.int64)] = True

    def unpin(self, pages: np.ndarray) -> None:
        self._pinned[np.asarray(pages, dtype=np.int64)] = False

    def pinned_count(self) -> int:
        return int(self._pinned.sum())
