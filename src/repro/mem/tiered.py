"""N-tier memory with placement tracking, first-touch allocation, and LRU.

``TieredMemory`` models an ordered hierarchy of memory tiers (tier 0 is
the fastest; the paper's testbed is the two-tier DRAM/CXL special
case).  It owns:

* per-page placement (tier index or unallocated),
* per-tier capacity accounting -- including *fractional* page-frame
  accounting for compressed tiers, where a page with compression ratio
  ``r`` consumes ``1/r`` physical frames,
* an approximate LRU clock per page (fed by the access stream, standing
  in for the kernel's (MG)LRU lists that PACT's eager demotion consults),
* first-touch allocation (fill the preferred tier, then spill down the
  hierarchy), which is also the paper's NoTier baseline.

Tier accounting is incremental: mutators (``allocate_first_touch``,
``move``, ``touch``) maintain per-tier resident counts and activity sums
in O(pages changed), and the derived queries (``pages_in_tier``,
``mean_activity``, ``resident_fraction``) are served from
generation-stamped caches instead of rescanning ``placement`` on every
call.  The cached answers are bit-identical to the full scans they
replace (same sorted page arrays, same ``np.mean`` reduction); setting
``REPRO_DEBUG_ACCOUNTING=1`` cross-checks every mutation against a
from-scratch scan.

The two-tier constructor signature (``fast_capacity_pages`` /
``slow_capacity_pages`` / ``fast_spec`` / ``slow_spec``) is preserved
verbatim, and every operation reduces to the exact pre-tier-graph
arithmetic when two tiers are configured -- the golden digests pin this.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.arrays import sorted_unique
from repro.common.units import TierSpec
from repro.mem.page import Tier, UNALLOCATED, tier_label

#: Environment switch: cross-check incremental accounting against full
#: placement scans after every mutation (slow; meant for tests).
DEBUG_ACCOUNTING_ENV = "REPRO_DEBUG_ACCOUNTING"


class CapacityError(ValueError):
    """Raised when tier capacities cannot hold the requested placement."""


class AccountingError(RuntimeError):
    """Incremental tier accounting diverged from a full placement scan."""


class TieredMemory:
    """Placement state for a footprint of ``footprint_pages`` 4KB pages."""

    def __init__(
        self,
        footprint_pages: int,
        fast_capacity_pages: Optional[int] = None,
        slow_capacity_pages: Optional[int] = None,
        fast_spec: Optional[TierSpec] = None,
        slow_spec: Optional[TierSpec] = None,
        debug_accounting: Optional[bool] = None,
        *,
        capacities: Optional[Sequence[int]] = None,
        specs: Optional[Sequence[TierSpec]] = None,
        page_frame_costs: Optional[Sequence[Optional[np.ndarray]]] = None,
    ):
        if footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        if capacities is None:
            # Legacy two-tier construction.
            capacities = [fast_capacity_pages, slow_capacity_pages]
            specs = [fast_spec, slow_spec]
        capacities = [int(c) for c in capacities]
        specs = list(specs)
        if len(capacities) < 2 or len(capacities) != len(specs):
            raise ValueError("need one spec per tier and at least two tiers")
        if any(c < 0 for c in capacities):
            raise ValueError("capacities must be non-negative")
        # Conservative fit check: a compressed page never grows, so each
        # tier holds at least ``capacity`` pages whatever the ratios.
        if sum(capacities) < footprint_pages:
            raise CapacityError(
                "tier capacities (%s pages) cannot hold footprint (%d pages)"
                % (" + ".join(str(c) for c in capacities), footprint_pages)
            )
        self.footprint_pages = footprint_pages
        self.num_tiers = len(capacities)
        self.capacity: List[int] = capacities
        self.spec: List[TierSpec] = specs
        #: Per-tier physical frames consumed per stored page (None = one
        #: frame per page; an array models a compressed tier's per-page
        #: compressibility).
        if page_frame_costs is None:
            page_frame_costs = [None] * self.num_tiers
        self._page_frame_cost: List[Optional[np.ndarray]] = list(page_frame_costs)
        if len(self._page_frame_cost) != self.num_tiers:
            raise ValueError("need one page-frame cost entry per tier")
        #: Fractional frames used, tracked only for compressed tiers.
        self._frames_used: List[float] = [0.0] * self.num_tiers
        self.placement = np.full(footprint_pages, UNALLOCATED, dtype=np.int8)
        self.used: List[int] = [0] * self.num_tiers
        #: Window index of each page's most recent access (LRU clock).
        self.last_touch = np.full(footprint_pages, -1, dtype=np.int64)
        #: Decayed per-page access intensity -- the simulator's stand-in
        #: for the kernel's (MG)LRU generations: pages accessed every
        #: window stay "active", pages that go quiet decay toward zero
        #: and become demotion victims.
        self.activity = np.zeros(footprint_pages, dtype=float)
        #: Per-window decay applied to ``activity`` (lazily).
        self.activity_decay = 0.7
        self._last_decay_window = 0
        #: Monotonic stamp of when each page last entered its tier --
        #: physical LRU-list position for FIFO-style reclaim.
        self.arrival = np.zeros(footprint_pages, dtype=np.int64)
        self._arrival_counter = 0
        #: Pages pinned in the fast tier (Nomad shadow copies, etc.).
        self._pinned = np.zeros(footprint_pages, dtype=bool)

        # -- incremental accounting state ---------------------------------
        #: Bumped whenever placement changes (allocation, migration).
        self._placement_gen = 0
        #: Bumped whenever ``activity`` changes (touch, lazy decay).
        self._activity_gen = 0
        #: O(delta)-maintained per-tier sum of resident pages' activity.
        self._activity_sum: List[float] = [0.0] * self.num_tiers
        #: When True the sums above are stale and :meth:`activity_sum`
        #: recomputes them from a full scan.  The window touch sets it
        #: instead of paying a per-window bincount for a value nothing
        #: on the hot path reads (see :meth:`activity_sum`'s contract:
        #: within float rounding, not bit-stable).
        self._activity_sums_stale = False
        #: tier index -> (placement generation, sorted resident page ids).
        self._resident_cache: Dict[int, Tuple[int, np.ndarray]] = {}
        #: tier index -> ((placement gen, activity gen), mean activity).
        self._mean_cache: Dict[int, Tuple[Tuple[int, int], float]] = {}
        #: tier index -> ((placement gen, activity gen, threshold), count).
        self._cold_cache: Dict[int, Tuple[Tuple[int, int, float], int]] = {}
        #: Reusable scratch mask for ``lru_victims`` protection.
        self._protect_scratch = np.zeros(footprint_pages, dtype=bool)
        if debug_accounting is None:
            debug_accounting = bool(os.environ.get(DEBUG_ACCOUNTING_ENV))
        self.debug_accounting = debug_accounting

    # -- queries ------------------------------------------------------------

    @property
    def tiers(self) -> range:
        """Tier indices, fastest first."""
        return range(self.num_tiers)

    def free_pages(self, tier: Tier) -> int:
        """Whole pages the tier can still admit.

        Exact for uncompressed tiers.  For a compressed tier this is a
        conservative lower bound (free frames at one frame per page);
        the mutators admit by exact per-page frame cost instead.
        """
        cost = self._page_frame_cost[tier]
        if cost is None:
            return self.capacity[tier] - self.used[tier]
        return int(np.floor(self.capacity[tier] - self._frames_used[tier]))

    def frames_used(self, tier: Tier) -> float:
        """Physical frames occupied in ``tier`` (== pages when uncompressed)."""
        if self._page_frame_cost[tier] is None:
            return float(self.used[tier])
        return self._frames_used[tier]

    def occupancy_fraction(self, tier: Tier) -> float:
        """Fraction of the tier's physical frames in use."""
        cap = self.capacity[tier]
        return self.frames_used(tier) / cap if cap > 0 else 0.0

    @property
    def fully_allocated(self) -> bool:
        """True once every footprint page has a tier.

        Pages are only ever allocated (``allocate_first_touch``) or
        moved between tiers (``move``), never freed, so the per-tier
        ``used`` totals are a monotone proxy: when they sum to the
        footprint, ``allocate_first_touch`` is a guaranteed no-op and
        callers may skip computing its page set entirely.
        """
        return sum(self.used) >= self.footprint_pages

    def tier_of(self, pages: np.ndarray) -> np.ndarray:
        """Placement of each page id (UNALLOCATED for untouched pages)."""
        return self.placement[np.asarray(pages, dtype=np.int64)]

    def pages_in_tier(self, tier: Tier) -> np.ndarray:
        """All page ids currently resident in ``tier`` (sorted ascending).

        Served from a generation-stamped cache: the placement array is
        rescanned at most once per placement change, however many times
        queries run within a window.  Treat the returned array as
        read-only -- it is shared between callers until the next
        migration or allocation invalidates it.
        """
        cached = self._resident_cache.get(tier)
        if cached is not None and cached[0] == self._placement_gen:
            return cached[1]
        pages = np.flatnonzero(self.placement == int(tier)).astype(np.int64)
        self._resident_cache[tier] = (self._placement_gen, pages)
        return pages

    def resident_fraction(self, tier: Tier) -> float:
        """Fraction of the allocated footprint resident in ``tier``."""
        allocated = sum(self.used)
        if allocated == 0:
            return 0.0
        return self.used[tier] / allocated

    def activity_sum(self, tier: Tier) -> float:
        """Per-tier sum of the tier's resident-page activity.

        Maintained incrementally by the migration mutators and
        recomputed lazily after window touches (the touch marks the
        sums stale instead of paying a per-window reduction for a value
        nothing on the hot path reads).  Within float rounding of
        ``activity[pages_in_tier(tier)].sum()`` (the debug cross-check
        asserts the two agree).  Decision paths that must be bit-stable
        use :meth:`mean_activity`, which reduces over the cached
        resident array exactly as the pre-incremental code did.
        """
        if self._activity_sums_stale:
            self._refresh_activity_sums()
        return self._activity_sum[tier]

    def _refresh_activity_sums(self) -> None:
        """Recompute the per-tier activity sums with full scans.

        Uses the very reduction the debug cross-check compares against
        (masked ``.sum()`` per tier), so a refreshed sum passes it
        exactly.
        """
        for tier in self.tiers:
            resident = self.placement == int(tier)
            self._activity_sum[tier] = float(self.activity[resident].sum())
        self._activity_sums_stale = False

    # -- allocation and access tracking --------------------------------------

    def _admit_count(self, tier: int, pages: np.ndarray) -> int:
        """How many of ``pages`` (in order) the tier can still admit."""
        cost = self._page_frame_cost[tier]
        if cost is None:
            return max(min(self.capacity[tier] - self.used[tier], pages.size), 0)
        free = self.capacity[tier] - self._frames_used[tier]
        if free <= 0.0 or pages.size == 0:
            return 0
        cum = np.cumsum(cost[pages])
        return int(np.searchsorted(cum, free, side="right"))

    def _charge_frames(self, tier: int, pages: np.ndarray, sign: float) -> None:
        cost = self._page_frame_cost[tier]
        if cost is not None and pages.size:
            self._frames_used[tier] += sign * float(cost[pages].sum())

    def allocate_first_touch(
        self, pages: np.ndarray, prefer: Tier = Tier.FAST
    ) -> "tuple[int, int]":
        """Allocate any unallocated pages, filling ``prefer`` first.

        Returns (pages placed in preferred tier, pages spilled to other
        tiers).  This mirrors first-touch NUMA allocation: the preferred
        node absorbs allocations until full, after which pages spill to
        the remaining tiers in hierarchy order.
        """
        pages = np.asarray(pages, dtype=np.int64)
        fresh = pages[self.placement[pages] == UNALLOCATED]
        if fresh.size == 0:
            return (0, 0)
        # Dedupe while preserving the caller's allocation order -- the
        # order decides which pages land in the preferred tier.
        _, first_idx = np.unique(fresh, return_index=True)
        fresh = fresh[np.sort(first_idx)]
        tier_order = [int(prefer)] + [t for t in self.tiers if t != int(prefer)]
        # Dry pass first: nothing is mutated unless everything fits.
        takes = []
        pos = 0
        for tier in tier_order:
            take = self._admit_count(tier, fresh[pos:]) if pos < fresh.size else 0
            takes.append(take)
            pos += take
        if pos < fresh.size:
            raise CapacityError("no capacity left for first-touch allocation")
        pos = 0
        for tier, take in zip(tier_order, takes):
            if take == 0:
                continue
            chunk = fresh[pos : pos + take]
            self.placement[chunk] = tier
            self.used[tier] += take
            self._charge_frames(tier, chunk, +1.0)
            # Pages can carry activity from touches predating allocation;
            # fold it into the destination tiers' running sums.
            if not self._activity_sums_stale:
                self._activity_sum[tier] += float(self.activity[chunk].sum())
            pos += take
        self._placement_gen += 1
        # Allocation order is LRU-list arrival order.
        self.arrival[fresh] = self._arrival_counter + np.arange(1, fresh.size + 1)
        self._arrival_counter += fresh.size
        if self.debug_accounting:
            self.check_accounting()
        return (int(takes[0]), int(fresh.size - takes[0]))

    def touch(
        self,
        pages: np.ndarray,
        window: int,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        """Record accesses during ``window`` (feeds LRU clock and activity).

        ``counts`` gives per-page access counts for the window; when
        omitted, each page counts as one touch (fancy-indexed ``+= 1``:
        once per *unique* page).  The per-tier activity sums are only
        marked stale here -- :meth:`activity_sum` recomputes on demand,
        so the window loop never pays for them.
        """
        pages = np.asarray(pages, dtype=np.int64)
        self._decay_activity(window)
        self.last_touch[pages] = window
        if counts is None:
            self.activity[pages] += 1.0
        else:
            np.add.at(self.activity, pages, np.asarray(counts, dtype=float))
        self._activity_sums_stale = True
        self._activity_gen += 1
        if self.debug_accounting:
            self.check_accounting()

    def _decay_activity(self, window: int) -> None:
        steps = window - self._last_decay_window
        if steps > 0:
            factor = self.activity_decay**steps
            self.activity *= factor
            if not self._activity_sums_stale:
                for tier in self.tiers:
                    self._activity_sum[tier] *= factor
            self._last_decay_window = window
            self._activity_gen += 1

    def mean_activity(self, tier: Tier) -> float:
        """Average access intensity of the tier's resident pages.

        Computed over the cached resident array with the same ``np.mean``
        reduction as the original full-scan version (so thresholds built
        from it stay bit-identical), then memoised until either the
        placement or the activity state changes.
        """
        key = (self._placement_gen, self._activity_gen)
        cached = self._mean_cache.get(tier)
        if cached is not None and cached[0] == key:
            return cached[1]
        resident = self.pages_in_tier(tier)
        value = float(self.activity[resident].mean()) if resident.size else 0.0
        self._mean_cache[tier] = (key, value)
        return value

    def cold_count(self, tier: Tier, max_activity: float) -> int:
        """Resident pages in ``tier`` at or below ``max_activity``.

        The count behind eager-demotion space budgets.  Computed over
        the cached resident array exactly like the per-window
        ``activity[pages] <= threshold`` gather-and-compare it replaces,
        then memoised on (placement, activity, threshold) so repeated
        queries within a window are O(1).
        """
        key = (self._placement_gen, self._activity_gen, float(max_activity))
        cached = self._cold_cache.get(tier)
        if cached is not None and cached[0] == key:
            return cached[1]
        resident = self.pages_in_tier(tier)
        value = (
            int(np.count_nonzero(self.activity[resident] <= max_activity))
            if resident.size
            else 0
        )
        self._cold_cache[tier] = (key, value)
        return value

    # -- migration primitives -------------------------------------------------

    def move(
        self, pages: np.ndarray, dst: Tier, src: Optional[int] = None
    ) -> np.ndarray:
        """Move pages to ``dst``, honouring capacity; returns pages moved.

        ``src`` optionally restricts the move to pages currently in that
        tier (multi-hop migration moves per source tier); by default any
        allocated page not already in ``dst`` is eligible.  Pages
        already in ``dst``, unallocated pages, and pages beyond the
        destination's free capacity are silently skipped (the kernel's
        ``move_pages()`` likewise partially succeeds).
        """
        # Sort-based dedupe: identical array to np.unique, several times
        # faster at migration batch sizes (see repro.common.arrays).
        pages = sorted_unique(np.asarray(pages, dtype=np.int64))
        dst_i = int(dst)
        place = self.placement[pages]
        if src is None:
            movable = pages[(place != dst_i) & (place != UNALLOCATED)]
        else:
            movable = pages[place == int(src)]
        if dst_i != int(Tier.FAST):
            # Demotions away from the top tier skip pinned pages.
            movable = movable[~self._pinned[movable]]
        cost = self._page_frame_cost[dst_i]
        if cost is None:
            room = self.capacity[dst_i] - self.used[dst_i]
            if movable.size > room:
                movable = movable[:room]
        else:
            movable = movable[: self._admit_count(dst_i, movable)]
        if movable.size:
            src_place = self.placement[movable]
            for s in np.unique(src_place):
                s = int(s)
                sub = movable[src_place == s]
                self.used[s] -= sub.size
                self._charge_frames(s, sub, -1.0)
                if not self._activity_sums_stale:
                    moved_activity = float(self.activity[sub].sum())
                    self._activity_sum[s] -= moved_activity
                    self._activity_sum[dst_i] += moved_activity
            self.placement[movable] = dst_i
            self.used[dst_i] += movable.size
            self._charge_frames(dst_i, movable, +1.0)
            self._placement_gen += 1
            self._arrival_counter += 1
            self.arrival[movable] = self._arrival_counter
            if self.debug_accounting:
                self.check_accounting()
        return movable

    def apply_moves(self, moves: Sequence[Tuple[np.ndarray, int, int]]) -> None:
        """Apply pre-clipped migration hops with one fused scatter.

        ``moves`` is an ordered sequence of ``(pages, src, dst)`` hops
        in which every page array is sorted, deduped, currently
        resident in ``src``, and already clipped to what ``dst`` can
        admit -- i.e. exactly the arrays a sequence of :meth:`move`
        calls would have returned hop by hop.  The planner's
        :class:`PlacementOverlay` produces such hops by construction.

        Bit-exactness vs. the per-hop path: the float accounting
        (activity sums, compressed-tier frame charges) runs per hop in
        the same operation order :meth:`move` used, so every
        intermediate float is identical; the placement and arrival
        writes -- pure scatters whose final value per page is the last
        hop touching it, exactly as sequential scatters would leave
        them -- are fused into one concatenated store each.
        """
        live: List[Tuple[np.ndarray, int, int]] = []
        for pages, src, dst in moves:
            if pages.size:
                live.append((pages, int(src), int(dst)))
        if not live:
            return
        arrival_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for pages, src, dst in live:
            self.used[src] -= pages.size
            self._charge_frames(src, pages, -1.0)
            if not self._activity_sums_stale:
                moved_activity = float(self.activity[pages].sum())
                self._activity_sum[src] -= moved_activity
                self._activity_sum[dst] += moved_activity
            self.used[dst] += pages.size
            self._charge_frames(dst, pages, +1.0)
            self._arrival_counter += 1
            dst_parts.append(np.full(pages.size, dst, dtype=self.placement.dtype))
            arrival_parts.append(
                np.full(pages.size, self._arrival_counter, dtype=self.arrival.dtype)
            )
        if len(live) == 1:
            pages, _, dst = live[0]
            self.placement[pages] = dst
            self.arrival[pages] = self._arrival_counter
        else:
            idx = np.concatenate([pages for pages, _, _ in live])
            self.placement[idx] = np.concatenate(dst_parts)
            self.arrival[idx] = np.concatenate(arrival_parts)
        self._placement_gen += 1
        if self.debug_accounting:
            self.check_accounting()

    def lru_victims(
        self,
        tier: Tier,
        count: int,
        protect: Optional[np.ndarray] = None,
        max_activity: Optional[float] = None,
        fifo: bool = False,
    ) -> np.ndarray:
        """Up to ``count`` reclaim victims resident in ``tier``.

        By default victims are ranked by decayed access intensity
        (coldest first).  ``protect`` pages (e.g. just-promoted ones)
        are excluded.  ``max_activity`` restricts eligibility to
        genuinely inactive pages -- a page accessed every window never
        reaches the kernel's inactive list, so it can never be a victim;
        ``None`` allows any resident page (aggressive watermark-style
        reclaim).  ``fifo`` instead ranks by tier-arrival order --
        physical LRU-list position, which is what simple watermark
        reclaim actually walks, hot pages included.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        return self.select_victims(
            self.pages_in_tier(tier),
            tier,
            count,
            protect=protect,
            max_activity=max_activity,
            fifo=fifo,
        )

    def select_victims(
        self,
        resident: np.ndarray,
        tier: Tier,
        count: int,
        protect: Optional[np.ndarray] = None,
        max_activity: Optional[float] = None,
        fifo: bool = False,
    ) -> np.ndarray:
        """The :meth:`lru_victims` ranking over a caller-supplied
        resident set (sorted ascending, as ``pages_in_tier`` returns).

        Exposed separately so the migration engine's fused planner can
        rank victims against its *planned* placement (mid-window state
        that exists only as an overlay) with exactly the eligibility and
        ordering rules the live path uses.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if int(tier) != int(Tier.FAST):
            resident = resident[~self._pinned[resident]]
        if protect is not None and protect.size:
            # Membership test through a reusable boolean scratch mask:
            # O(resident + protect) instead of np.isin's sort/search.
            protect = np.asarray(protect, dtype=np.int64)
            scratch = self._protect_scratch
            scratch[protect] = True
            resident = resident[~scratch[resident]]
            scratch[protect] = False
        if max_activity is not None:
            resident = resident[self.activity[resident] <= max_activity]
        if resident.size == 0:
            return resident
        keys = self.arrival[resident] if fifo else self.activity[resident]
        if count >= resident.size:
            order = np.argsort(keys, kind="stable")
            return resident[order]
        part = np.argpartition(keys, count)[:count]
        order = np.argsort(keys[part], kind="stable")
        return resident[part[order]]

    def overlay(self) -> "PlacementOverlay":
        """Scratch placement/capacity state for migration *planning*."""
        return PlacementOverlay(self)

    # -- pinning (used by non-exclusive tiering a la Nomad) -------------------

    def pin(self, pages: np.ndarray) -> None:
        self._pinned[np.asarray(pages, dtype=np.int64)] = True

    def unpin(self, pages: np.ndarray) -> None:
        self._pinned[np.asarray(pages, dtype=np.int64)] = False

    def pinned_count(self) -> int:
        return int(self._pinned.sum())

    # -- debug cross-checks ----------------------------------------------------

    def check_accounting(self) -> None:
        """Validate the incremental accounting against full scans.

        Recomputes per-tier residency, activity, and (for compressed
        tiers) frame aggregates from the ``placement``/``activity``
        arrays and raises :class:`AccountingError` on any divergence.
        Runs after every mutation when ``debug_accounting`` is set (or
        the ``REPRO_DEBUG_ACCOUNTING`` environment variable is
        non-empty).
        """
        if self._activity_sums_stale:
            self._refresh_activity_sums()
        for tier in self.tiers:
            label = tier_label(tier)
            scan = np.flatnonzero(self.placement == int(tier)).astype(np.int64)
            if self.used[tier] != scan.size:
                raise AccountingError(
                    f"used[{label}]={self.used[tier]} but scan finds {scan.size}"
                )
            cached = self._resident_cache.get(tier)
            if cached is not None and cached[0] == self._placement_gen:
                if not np.array_equal(cached[1], scan):
                    raise AccountingError(f"resident cache for {label} is stale")
            true_sum = float(self.activity[scan].sum())
            if not np.isclose(self._activity_sum[tier], true_sum, rtol=1e-9, atol=1e-6):
                raise AccountingError(
                    f"activity_sum[{label}]={self._activity_sum[tier]!r} "
                    f"but scan sums to {true_sum!r}"
                )
            cost = self._page_frame_cost[tier]
            if cost is not None:
                true_frames = float(cost[scan].sum())
                if not np.isclose(
                    self._frames_used[tier], true_frames, rtol=1e-9, atol=1e-6
                ):
                    raise AccountingError(
                        f"frames_used[{label}]={self._frames_used[tier]!r} "
                        f"but scan sums to {true_frames!r}"
                    )
                if self._frames_used[tier] > self.capacity[tier] + 1e-6:
                    raise AccountingError(
                        f"frames_used[{label}]={self._frames_used[tier]!r} "
                        f"exceeds capacity {self.capacity[tier]}"
                    )


class PlacementOverlay:
    """Scratch placement/capacity state for planning a window's migrations.

    The fused migration engine replays the legacy per-hop control flow
    against this overlay *before* touching the real memory: the overlay
    copies the placement array and the per-tier used/frame counters, and
    :meth:`clip_move` reproduces :meth:`TieredMemory.move`'s exact
    select/clip arithmetic (same dedupe, same pinned filter, same
    capacity/frame clipping, same float charge order) while mutating
    only the scratch state.  The hop page arrays it returns are
    therefore, by construction, exactly what the sequence of real
    ``move`` calls would have returned -- ready for
    :meth:`TieredMemory.apply_moves`'s single fused scatter.

    Activity and pinning are read straight from the underlying memory:
    neither changes during migration application, so no copy is needed.
    """

    def __init__(self, memory: TieredMemory):
        self._memory = memory
        self.placement = memory.placement.copy()
        self.used: List[int] = list(memory.used)
        self._frames_used: List[float] = list(memory._frames_used)
        #: False until the first planned hop: pristine overlays can keep
        #: serving the memory's cached resident arrays.
        self._mutated = False

    def tier_of(self, pages: np.ndarray) -> np.ndarray:
        return self.placement[np.asarray(pages, dtype=np.int64)]

    def free_pages(self, tier: int) -> int:
        """Planned-state analogue of :meth:`TieredMemory.free_pages`."""
        if self._memory._page_frame_cost[tier] is None:
            return self._memory.capacity[tier] - self.used[tier]
        return int(np.floor(self._memory.capacity[tier] - self._frames_used[tier]))

    def pages_in_tier(self, tier: int) -> np.ndarray:
        """Sorted resident ids under the planned placement."""
        if not self._mutated:
            return self._memory.pages_in_tier(tier)
        return np.flatnonzero(self.placement == int(tier)).astype(np.int64)

    def lru_victims(
        self,
        tier: int,
        count: int,
        protect: Optional[np.ndarray] = None,
        max_activity: Optional[float] = None,
        fifo: bool = False,
    ) -> np.ndarray:
        """Victim ranking over the planned resident set.

        Delegates to :meth:`TieredMemory.select_victims` so eligibility
        and ordering rules stay byte-for-byte those of the live path.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        return self._memory.select_victims(
            self.pages_in_tier(tier),
            tier,
            count,
            protect=protect,
            max_activity=max_activity,
            fifo=fifo,
        )

    def _admit_count(self, tier: int, pages: np.ndarray) -> int:
        cost = self._memory._page_frame_cost[tier]
        if cost is None:
            return max(min(self._memory.capacity[tier] - self.used[tier], pages.size), 0)
        free = self._memory.capacity[tier] - self._frames_used[tier]
        if free <= 0.0 or pages.size == 0:
            return 0
        cum = np.cumsum(cost[pages])
        return int(np.searchsorted(cum, free, side="right"))

    def _charge_frames(self, tier: int, pages: np.ndarray, sign: float) -> None:
        cost = self._memory._page_frame_cost[tier]
        if cost is not None and pages.size:
            self._frames_used[tier] += sign * float(cost[pages].sum())

    def clip_move(self, pages: np.ndarray, dst: int, src: int) -> np.ndarray:
        """Select/clip one migration hop and commit it to the overlay.

        Mirrors :meth:`TieredMemory.move` with an explicit ``src`` (the
        only form the migration engine uses): sorted dedupe, source
        filter against the planned placement, pinned filter on
        demotions, then capacity (or exact per-page frame) clipping
        against the planned occupancy.  Returns the pages the real move
        would have moved.
        """
        pages = sorted_unique(np.asarray(pages, dtype=np.int64))
        dst_i = int(dst)
        place = self.placement[pages]
        movable = pages[place == int(src)]
        if dst_i != int(Tier.FAST):
            movable = movable[~self._memory._pinned[movable]]
        cost = self._memory._page_frame_cost[dst_i]
        if cost is None:
            room = self._memory.capacity[dst_i] - self.used[dst_i]
            if movable.size > room:
                movable = movable[:room]
        else:
            movable = movable[: self._admit_count(dst_i, movable)]
        if movable.size:
            src_i = int(src)
            self.used[src_i] -= movable.size
            self._charge_frames(src_i, movable, -1.0)
            self.placement[movable] = dst_i
            self.used[dst_i] += movable.size
            self._charge_frames(dst_i, movable, +1.0)
            self._mutated = True
        return movable
