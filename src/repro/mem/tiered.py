"""Two-tier memory with placement tracking, first-touch allocation, and LRU.

``TieredMemory`` models the fast tier (local DRAM) and slow tier
(NUMA/CXL) of the paper's testbed.  It owns:

* per-page placement (fast / slow / unallocated),
* per-tier capacity accounting,
* an approximate LRU clock per page (fed by the access stream, standing
  in for the kernel's (MG)LRU lists that PACT's eager demotion consults),
* first-touch allocation (fill the fast tier, then spill to slow), which
  is also the paper's NoTier baseline.

Tier accounting is incremental: mutators (``allocate_first_touch``,
``move``, ``touch``) maintain per-tier resident counts and activity sums
in O(pages changed), and the derived queries (``pages_in_tier``,
``mean_activity``, ``resident_fraction``) are served from
generation-stamped caches instead of rescanning ``placement`` on every
call.  The cached answers are bit-identical to the full scans they
replace (same sorted page arrays, same ``np.mean`` reduction); setting
``REPRO_DEBUG_ACCOUNTING=1`` cross-checks every mutation against a
from-scratch scan.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.units import TierSpec
from repro.mem.page import Tier, UNALLOCATED

#: Environment switch: cross-check incremental accounting against full
#: placement scans after every mutation (slow; meant for tests).
DEBUG_ACCOUNTING_ENV = "REPRO_DEBUG_ACCOUNTING"


class CapacityError(ValueError):
    """Raised when tier capacities cannot hold the requested placement."""


class AccountingError(RuntimeError):
    """Incremental tier accounting diverged from a full placement scan."""


class TieredMemory:
    """Placement state for a footprint of ``footprint_pages`` 4KB pages."""

    def __init__(
        self,
        footprint_pages: int,
        fast_capacity_pages: int,
        slow_capacity_pages: int,
        fast_spec: TierSpec,
        slow_spec: TierSpec,
        debug_accounting: Optional[bool] = None,
    ):
        if footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        if fast_capacity_pages < 0 or slow_capacity_pages < 0:
            raise ValueError("capacities must be non-negative")
        if fast_capacity_pages + slow_capacity_pages < footprint_pages:
            raise CapacityError(
                "tier capacities (%d + %d pages) cannot hold footprint (%d pages)"
                % (fast_capacity_pages, slow_capacity_pages, footprint_pages)
            )
        self.footprint_pages = footprint_pages
        self.capacity = {Tier.FAST: fast_capacity_pages, Tier.SLOW: slow_capacity_pages}
        self.spec = {Tier.FAST: fast_spec, Tier.SLOW: slow_spec}
        self.placement = np.full(footprint_pages, UNALLOCATED, dtype=np.int8)
        self.used = {Tier.FAST: 0, Tier.SLOW: 0}
        #: Window index of each page's most recent access (LRU clock).
        self.last_touch = np.full(footprint_pages, -1, dtype=np.int64)
        #: Decayed per-page access intensity -- the simulator's stand-in
        #: for the kernel's (MG)LRU generations: pages accessed every
        #: window stay "active", pages that go quiet decay toward zero
        #: and become demotion victims.
        self.activity = np.zeros(footprint_pages, dtype=float)
        #: Per-window decay applied to ``activity`` (lazily).
        self.activity_decay = 0.7
        self._last_decay_window = 0
        #: Monotonic stamp of when each page last entered its tier --
        #: physical LRU-list position for FIFO-style reclaim.
        self.arrival = np.zeros(footprint_pages, dtype=np.int64)
        self._arrival_counter = 0
        #: Pages pinned in the fast tier (Nomad shadow copies, etc.).
        self._pinned = np.zeros(footprint_pages, dtype=bool)

        # -- incremental accounting state ---------------------------------
        #: Bumped whenever placement changes (allocation, migration).
        self._placement_gen = 0
        #: Bumped whenever ``activity`` changes (touch, lazy decay).
        self._activity_gen = 0
        #: O(delta)-maintained per-tier sum of resident pages' activity.
        self._activity_sum = {Tier.FAST: 0.0, Tier.SLOW: 0.0}
        #: tier -> (placement generation, sorted resident page ids).
        self._resident_cache: Dict[Tier, Tuple[int, np.ndarray]] = {}
        #: tier -> ((placement gen, activity gen), mean activity).
        self._mean_cache: Dict[Tier, Tuple[Tuple[int, int], float]] = {}
        #: Reusable scratch mask for ``lru_victims`` protection.
        self._protect_scratch = np.zeros(footprint_pages, dtype=bool)
        if debug_accounting is None:
            debug_accounting = bool(os.environ.get(DEBUG_ACCOUNTING_ENV))
        self.debug_accounting = debug_accounting

    # -- queries ------------------------------------------------------------

    def free_pages(self, tier: Tier) -> int:
        return self.capacity[tier] - self.used[tier]

    @property
    def fully_allocated(self) -> bool:
        """True once every footprint page has a tier.

        Pages are only ever allocated (``allocate_first_touch``) or
        moved between tiers (``move``), never freed, so the per-tier
        ``used`` totals are a monotone proxy: when they sum to the
        footprint, ``allocate_first_touch`` is a guaranteed no-op and
        callers may skip computing its page set entirely.
        """
        return self.used[Tier.FAST] + self.used[Tier.SLOW] >= self.footprint_pages

    def tier_of(self, pages: np.ndarray) -> np.ndarray:
        """Placement of each page id (UNALLOCATED for untouched pages)."""
        return self.placement[np.asarray(pages, dtype=np.int64)]

    def pages_in_tier(self, tier: Tier) -> np.ndarray:
        """All page ids currently resident in ``tier`` (sorted ascending).

        Served from a generation-stamped cache: the placement array is
        rescanned at most once per placement change, however many times
        queries run within a window.  Treat the returned array as
        read-only -- it is shared between callers until the next
        migration or allocation invalidates it.
        """
        cached = self._resident_cache.get(tier)
        if cached is not None and cached[0] == self._placement_gen:
            return cached[1]
        pages = np.flatnonzero(self.placement == int(tier)).astype(np.int64)
        self._resident_cache[tier] = (self._placement_gen, pages)
        return pages

    def resident_fraction(self, tier: Tier) -> float:
        """Fraction of the allocated footprint resident in ``tier``."""
        allocated = self.used[Tier.FAST] + self.used[Tier.SLOW]
        if allocated == 0:
            return 0.0
        return self.used[tier] / allocated

    def activity_sum(self, tier: Tier) -> float:
        """O(1) incremental sum of the tier's resident-page activity.

        Maintained by the mutators; within float rounding of
        ``activity[pages_in_tier(tier)].sum()`` (the debug cross-check
        asserts the two agree).  Decision paths that must be bit-stable
        use :meth:`mean_activity`, which reduces over the cached
        resident array exactly as the pre-incremental code did.
        """
        return self._activity_sum[tier]

    # -- allocation and access tracking --------------------------------------

    def allocate_first_touch(
        self, pages: np.ndarray, prefer: Tier = Tier.FAST
    ) -> "tuple[int, int]":
        """Allocate any unallocated pages, filling ``prefer`` first.

        Returns (pages placed in preferred tier, pages spilled to the
        other tier).  This mirrors first-touch NUMA allocation: the fast
        node absorbs allocations until full, after which pages land in
        the slow node.
        """
        pages = np.asarray(pages, dtype=np.int64)
        fresh = pages[self.placement[pages] == UNALLOCATED]
        if fresh.size == 0:
            return (0, 0)
        # Dedupe while preserving the caller's allocation order -- the
        # order decides which pages land in the preferred tier.
        _, first_idx = np.unique(fresh, return_index=True)
        fresh = fresh[np.sort(first_idx)]
        other = Tier.SLOW if prefer == Tier.FAST else Tier.FAST
        take = min(self.free_pages(prefer), fresh.size)
        spill = fresh.size - take
        if spill > self.free_pages(other):
            raise CapacityError("no capacity left for first-touch allocation")
        self.placement[fresh[:take]] = int(prefer)
        self.placement[fresh[take:]] = int(other)
        self.used[prefer] += take
        self.used[other] += spill
        # Pages can carry activity from touches predating allocation;
        # fold it into the destination tiers' running sums.
        self._activity_sum[prefer] += float(self.activity[fresh[:take]].sum())
        self._activity_sum[other] += float(self.activity[fresh[take:]].sum())
        self._placement_gen += 1
        # Allocation order is LRU-list arrival order.
        self.arrival[fresh] = self._arrival_counter + np.arange(1, fresh.size + 1)
        self._arrival_counter += fresh.size
        if self.debug_accounting:
            self.check_accounting()
        return (int(take), int(spill))

    def touch(
        self, pages: np.ndarray, window: int, counts: Optional[np.ndarray] = None
    ) -> None:
        """Record accesses during ``window`` (feeds LRU clock and activity).

        ``counts`` gives per-page access counts for the window; when
        omitted, each page counts as one touch.
        """
        pages = np.asarray(pages, dtype=np.int64)
        self._decay_activity(window)
        self.last_touch[pages] = window
        tiers = self.placement[pages]
        if counts is None:
            # Fancy-indexed += applies once per *unique* page; mirror
            # that in the per-tier sums.
            self.activity[pages] += 1.0
            unique_tiers = tiers if pages.size == np.unique(pages).size else (
                self.placement[np.unique(pages)]
            )
            for tier in (Tier.FAST, Tier.SLOW):
                self._activity_sum[tier] += float((unique_tiers == int(tier)).sum())
        else:
            counts = np.asarray(counts, dtype=float)
            np.add.at(self.activity, pages, counts)
            # One bincount pass yields the per-placement count sums
            # (slot 0 absorbs UNALLOCATED pages, which belong to no tier).
            sums = np.bincount(tiers.astype(np.intp) + 1, weights=counts, minlength=3)
            self._activity_sum[Tier.FAST] += float(sums[int(Tier.FAST) + 1])
            self._activity_sum[Tier.SLOW] += float(sums[int(Tier.SLOW) + 1])
        self._activity_gen += 1
        if self.debug_accounting:
            self.check_accounting()

    def _decay_activity(self, window: int) -> None:
        steps = window - self._last_decay_window
        if steps > 0:
            factor = self.activity_decay**steps
            self.activity *= factor
            self._activity_sum[Tier.FAST] *= factor
            self._activity_sum[Tier.SLOW] *= factor
            self._last_decay_window = window
            self._activity_gen += 1

    def mean_activity(self, tier: Tier) -> float:
        """Average access intensity of the tier's resident pages.

        Computed over the cached resident array with the same ``np.mean``
        reduction as the original full-scan version (so thresholds built
        from it stay bit-identical), then memoised until either the
        placement or the activity state changes.
        """
        key = (self._placement_gen, self._activity_gen)
        cached = self._mean_cache.get(tier)
        if cached is not None and cached[0] == key:
            return cached[1]
        resident = self.pages_in_tier(tier)
        value = float(self.activity[resident].mean()) if resident.size else 0.0
        self._mean_cache[tier] = (key, value)
        return value

    # -- migration primitives -------------------------------------------------

    def move(self, pages: np.ndarray, dst: Tier) -> np.ndarray:
        """Move pages to ``dst``, honouring capacity; returns pages moved.

        Pages already in ``dst``, unallocated pages, and pages beyond the
        destination's free capacity are silently skipped (the kernel's
        ``move_pages()`` likewise partially succeeds).
        """
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        src = Tier.SLOW if dst == Tier.FAST else Tier.FAST
        movable = pages[self.placement[pages] == int(src)]
        if dst == Tier.SLOW:
            movable = movable[~self._pinned[movable]]
        room = self.free_pages(dst)
        if movable.size > room:
            movable = movable[:room]
        if movable.size:
            self.placement[movable] = int(dst)
            self.used[src] -= movable.size
            self.used[dst] += movable.size
            moved_activity = float(self.activity[movable].sum())
            self._activity_sum[src] -= moved_activity
            self._activity_sum[dst] += moved_activity
            self._placement_gen += 1
            self._arrival_counter += 1
            self.arrival[movable] = self._arrival_counter
            if self.debug_accounting:
                self.check_accounting()
        return movable

    def lru_victims(
        self,
        tier: Tier,
        count: int,
        protect: Optional[np.ndarray] = None,
        max_activity: Optional[float] = None,
        fifo: bool = False,
    ) -> np.ndarray:
        """Up to ``count`` reclaim victims resident in ``tier``.

        By default victims are ranked by decayed access intensity
        (coldest first).  ``protect`` pages (e.g. just-promoted ones)
        are excluded.  ``max_activity`` restricts eligibility to
        genuinely inactive pages -- a page accessed every window never
        reaches the kernel's inactive list, so it can never be a victim;
        ``None`` allows any resident page (aggressive watermark-style
        reclaim).  ``fifo`` instead ranks by tier-arrival order --
        physical LRU-list position, which is what simple watermark
        reclaim actually walks, hot pages included.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        resident = self.pages_in_tier(tier)
        if tier == Tier.SLOW:
            resident = resident[~self._pinned[resident]]
        if protect is not None and protect.size:
            # Membership test through a reusable boolean scratch mask:
            # O(resident + protect) instead of np.isin's sort/search.
            protect = np.asarray(protect, dtype=np.int64)
            scratch = self._protect_scratch
            scratch[protect] = True
            resident = resident[~scratch[resident]]
            scratch[protect] = False
        if max_activity is not None:
            resident = resident[self.activity[resident] <= max_activity]
        if resident.size == 0:
            return resident
        keys = self.arrival[resident] if fifo else self.activity[resident]
        if count >= resident.size:
            order = np.argsort(keys, kind="stable")
            return resident[order]
        part = np.argpartition(keys, count)[:count]
        order = np.argsort(keys[part], kind="stable")
        return resident[part[order]]

    # -- pinning (used by non-exclusive tiering a la Nomad) -------------------

    def pin(self, pages: np.ndarray) -> None:
        self._pinned[np.asarray(pages, dtype=np.int64)] = True

    def unpin(self, pages: np.ndarray) -> None:
        self._pinned[np.asarray(pages, dtype=np.int64)] = False

    def pinned_count(self) -> int:
        return int(self._pinned.sum())

    # -- debug cross-checks ----------------------------------------------------

    def check_accounting(self) -> None:
        """Validate the incremental accounting against full scans.

        Recomputes per-tier residency and activity aggregates from the
        ``placement``/``activity`` arrays and raises
        :class:`AccountingError` on any divergence.  Runs after every
        mutation when ``debug_accounting`` is set (or the
        ``REPRO_DEBUG_ACCOUNTING`` environment variable is non-empty).
        """
        for tier in (Tier.FAST, Tier.SLOW):
            scan = np.flatnonzero(self.placement == int(tier)).astype(np.int64)
            if self.used[tier] != scan.size:
                raise AccountingError(
                    f"used[{tier.name}]={self.used[tier]} but scan finds {scan.size}"
                )
            cached = self._resident_cache.get(tier)
            if cached is not None and cached[0] == self._placement_gen:
                if not np.array_equal(cached[1], scan):
                    raise AccountingError(f"resident cache for {tier.name} is stale")
            true_sum = float(self.activity[scan].sum())
            if not np.isclose(self._activity_sum[tier], true_sum, rtol=1e-9, atol=1e-6):
                raise AccountingError(
                    f"activity_sum[{tier.name}]={self._activity_sum[tier]!r} "
                    f"but scan sums to {true_sum!r}"
                )
