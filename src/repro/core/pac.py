"""The PAC model: per-tier stall estimation from counters (Equation 1).

    LLC-stalls = k * LLC-misses / MLP

where ``k`` is a per-tier coefficient capturing memory latency, memory
controller queueing, and architectural constants (§4.2).  The paper
validates this form across 96 workloads and three latency
configurations with Pearson correlation above 0.98.

``k`` is fitted once per hardware configuration (a least-squares line
through the origin over (misses/MLP, stalls) points from a calibration
run); :mod:`repro.core.calibration` provides that fit.  A sensible
default -- the tier's unloaded latency in cycles -- is used when no
calibration has been run, since PAC only needs *relative* page ordering
within a tier and ``k`` scales all PAC values equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.units import TierSpec


@dataclass(frozen=True)
class PacModelCoefficients:
    """Fitted Equation-1 coefficient for one memory tier."""

    k_cycles: float

    def tier_stalls(self, llc_misses: float, mlp: float) -> float:
        """Estimated stall cycles for an observation interval (Eq. 1)."""
        if mlp <= 0:
            raise ValueError("MLP must be positive")
        return self.k_cycles * llc_misses / mlp

    @staticmethod
    def default_for(spec: TierSpec) -> "PacModelCoefficients":
        """Uncalibrated default: the tier's idle latency in cycles."""
        return PacModelCoefficients(k_cycles=spec.latency_cycles)


def fit_k(misses_over_mlp: Sequence[float], stalls: Sequence[float]) -> float:
    """Least-squares slope through the origin for Equation 1.

    Given calibration observations ``x_i = misses_i / mlp_i`` and
    measured stalls ``y_i``, the best ``k`` minimising ``sum (y - kx)^2``
    is ``sum(xy) / sum(x^2)``.
    """
    x = np.asarray(misses_over_mlp, dtype=float)
    y = np.asarray(stalls, dtype=float)
    if x.size != y.size:
        raise ValueError("calibration samples must align")
    denom = float((x * x).sum())
    if denom <= 0.0:
        raise ValueError("calibration requires nonzero miss traffic")
    return float((x * y).sum() / denom)


def attribute_stalls(
    total_stalls: float,
    access_counts: np.ndarray,
    latencies: np.ndarray = None,
) -> np.ndarray:
    """Distribute tier stalls across sampled pages (Algorithm 1, line 7).

    Proportional attribution by default: ``S_p = S * A_p / A_t``.  With
    per-page sampled latencies (Sapphire-Rapids-style PEBS latency
    reporting, §4.3.7) attribution is latency-weighted:
    ``S_p = S * A_p l_p / sum_i A_i l_i``.
    """
    counts = np.asarray(access_counts, dtype=float)
    if counts.size == 0:
        return counts
    if latencies is not None:
        weights = counts * np.asarray(latencies, dtype=float)
    else:
        weights = counts
    total_weight = weights.sum()
    if total_weight <= 0.0:
        return np.zeros_like(counts)
    return total_stalls * weights / total_weight
