"""PACT's migration policy: eager demotion + adaptive promotion (§4.4).

Algorithm 2, distilled: pages in the highest-priority bin are promoted
as soon as they appear; fast-tier space for them is reclaimed *ahead of
time* by demoting LRU victims, keeping the cumulative demotion count at
least ``m`` ahead of promotions (``m = 0`` balances exactly, larger
``m`` builds headroom for bursty workloads).  Early in execution, while
fast-tier utilisation is dominated by cold first-touch allocations,
this eagerly drains inactive pages; as the fast tier converges to the
critical working set the demotion rate falls toward on-demand behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mem.page import Tier
from repro.sim.policy_api import Decision, Observation, no_pages


@dataclass
class MigrationPlanner:
    """Eager-demotion bookkeeping around the promotion stream."""

    #: Demotion aggressiveness: extra pages demoted beyond promotions.
    m: int = 0
    #: Cap on promotions applied in a single window (0 = uncapped); the
    #: adaptive binner already bounds candidate supply, so this is a
    #: safety valve, not a tuning knob.
    max_promotions_per_window: int = 0

    promoted_total: int = 0
    demoted_total: int = 0

    #: Pages actually moved per promoted candidate (512 under THP, where
    #: the engine migrates whole 2MB regions).
    unit_pages: int = 1

    def plan(self, candidates: np.ndarray, obs: Observation) -> Decision:
        """Algorithm 2 for one window's candidate set."""
        candidates = np.asarray(candidates, dtype=np.int64)
        if self.max_promotions_per_window > 0 and candidates.size > self.max_promotions_per_window:
            candidates = candidates[: self.max_promotions_per_window]
        if candidates.size == 0 and self.m == 0:
            return Decision.none()

        # Promotions are gated by available space: demote enough LRU
        # victims that the batch fits, plus keep N_demoted >= N_promoted
        # + m for proactive headroom (Algorithm 2, lines 5-6).  All
        # accounting is in the engine's migration unit.
        promote_pages = candidates.size * self.unit_pages
        margin = self.m * self.unit_pages
        free = obs.memory.free_pages(Tier.FAST)
        need_space = max(promote_pages - free, 0)
        need_balance = max(
            self.promoted_total + promote_pages + margin - self.demoted_total, 0
        )
        demote_lru = max(need_space, min(need_balance, promote_pages + margin))
        if self.unit_pages > 1 and demote_lru > 0:
            # Victim selection also expands to whole huge pages; request
            # in whole units so the engine does not over-demote.
            demote_lru = max(demote_lru // self.unit_pages, 1)

        self.promoted_total += int(promote_pages)
        self.demoted_total += int(demote_lru * self.unit_pages)
        # Victims come from the LRU tail (coldest pages first, but with
        # no absolute activity floor): when every fast page is active --
        # e.g. a fast tier full of streamed weights -- eager demotion
        # still reclaims the least-hot pages so critical promotions are
        # never starved.  Thrash is bounded by the promotion cooldown
        # and the swap-profitability bar upstream, not by refusing to
        # demote.
        return Decision(
            promote=candidates,
            demote=no_pages(),
            demote_lru=int(demote_lru),
            demote_victim_mode="lru_tail",
        )
