"""Adaptive binning for promotion candidate selection (§4.5, Algorithm 3).

PAC distributions are heavily skewed and drift over time, so static
thresholds either starve promotion or cause migration storms.  PACT
instead keeps a histogram over PAC values whose bin width adapts:

* a fixed-size **reservoir** maintains a uniform sample of observed PAC
  values without tracking the full distribution,
* the **Freedman-Diaconis rule** turns the reservoir's interquartile
  range into a robust base bin width,
* a symmetric **scaling** loop doubles/halves the width to keep the
  highest-priority bin at a small, stable fraction of tracked pages
  (the top 1-5%), bounding the promotion-candidate supply.

Pages in the highest non-empty bin are the promotion candidates.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.histogram import bin_indices, freedman_diaconis_width
from repro.common.reservoir import Reservoir

DEFAULT_NUM_BINS = 20
DEFAULT_RESERVOIR = 100

#: Target ratio N_page / N_candidates; the scaling rule keeps the top
#: bin near 1/T_scale of tracked pages (~2%).
DEFAULT_T_SCALE = 50.0

_MIN_SCALE_EXP = -12
_MAX_SCALE_EXP = 12


class AdaptiveBinner:
    """Histogram binning with reservoir-fed Freedman-Diaconis widths."""

    def __init__(
        self,
        num_bins: int = DEFAULT_NUM_BINS,
        reservoir_size: int = DEFAULT_RESERVOIR,
        t_scale: float = DEFAULT_T_SCALE,
        adaptive: bool = True,
        scaling: bool = True,
        rng: Optional[np.random.Generator] = None,
        static_width: Optional[float] = None,
    ):
        if num_bins < 2:
            raise ValueError("need at least two bins")
        if t_scale <= 1.0:
            raise ValueError("t_scale must exceed 1")
        self.num_bins = num_bins
        self.t_scale = t_scale
        #: False = '+Static' ablation: keep the first width forever.
        self.adaptive = adaptive
        #: False = '+Adaptive' ablation: Freedman-Diaconis without scaling.
        self.scaling = scaling
        self.reservoir = Reservoir(reservoir_size, rng=rng)
        self._scale_exp = 0
        self._width = static_width if static_width is not None else 0.0
        self._frozen = static_width is not None

    @property
    def width(self) -> float:
        """Current bin width (Figure 8b's adapted quantity)."""
        return self._width

    # -- updates -------------------------------------------------------------------

    def observe(
        self,
        pac_values: np.ndarray,
        n_tracked: int,
        n_candidates: int,
        positive_values: Optional[np.ndarray] = None,
    ) -> None:
        """Fold sampled PAC values in and adapt the bin width.

        ``n_tracked`` is N_page (tracked pages); ``n_candidates`` is the
        current promotion-candidate count N_c used by the scaling rule.
        ``positive_values`` optionally passes the strictly-positive
        subset of ``pac_values`` (in the same order) when the caller has
        already computed it, skipping a second compress pass.
        """
        if positive_values is None:
            values = np.asarray(pac_values, dtype=float)
            positive_values = values[values > 0.0]
        self.reservoir.offer_many(positive_values)
        if self._frozen and self._width > 0.0:
            return
        q1, q3 = self.reservoir.quartiles()
        base = freedman_diaconis_width(q1, q3, max(n_tracked, 1))
        if base <= 0.0:
            if self._width <= 0.0 and self.reservoir.seen:
                # Degenerate spread: fall back to a width that puts the
                # median in a mid bin.
                median = float(np.median(self.reservoir.values())) if len(self.reservoir) else 0.0
                self._width = median / max(self.num_bins // 2, 1) if median > 0 else 0.0
            if self._frozen:
                self._frozen = self._width <= 0.0  # freeze once a width exists
            return
        if not self.adaptive:
            # '+Static': lock in the first Freedman-Diaconis width.
            if self._width <= 0.0:
                self._width = base
            return
        if self.scaling and n_candidates >= 0 and n_tracked > 0:
            ratio = n_tracked / max(n_candidates, 1)
            if ratio > self.t_scale and self._scale_exp < _MAX_SCALE_EXP:
                self._scale_exp += 1  # too few candidates: widen bins
            elif ratio < self.t_scale and self._scale_exp > _MIN_SCALE_EXP:
                self._scale_exp -= 1  # too many candidates: restore sensitivity
        self._width = base * 2.0**self._scale_exp

    # -- selection -----------------------------------------------------------------

    def assign_bins(self, values: np.ndarray) -> np.ndarray:
        """Priority-bin index (0..num_bins-1) for each value.

        For display/priority purposes the histogram is clamped to
        ``num_bins`` bins; candidate selection uses the unclamped
        indices (see :meth:`top_bin_mask`).
        """
        return bin_indices(values, self._width, self.num_bins)

    def top_bin_threshold(self, vmax: float) -> float:
        """Lower edge of the top bin for a distribution peaking at ``vmax``.

        Returns 0.0 when the binner has no prioritisation signal yet
        (no width, or the whole distribution fits one bin): every
        positive value is then a candidate.  With a threshold in hand,
        candidate selection is a single ``values >= threshold`` compare
        -- the cached-edge fast path :class:`~repro.core.pact.PactPolicy`
        uses instead of re-deriving the positive set and maximum inside
        :meth:`top_bin_mask` each planning window.
        """
        if self._width <= 0.0 or vmax <= self._width:
            return 0.0
        return vmax - self._width

    def top_bin_mask(self, values: np.ndarray) -> np.ndarray:
        """Mask of values in the highest-priority bin (the candidates).

        The top bin is the width-W slice anchored at the distribution's
        maximum: ``[max - W, max]``.  Anchoring at the maximum (rather
        than quantising from zero) keeps the scaling rule monotone under
        the heavy right tails PAC exhibits: halving W always narrows the
        candidate slice, doubling always widens it, so the
        N_page/N_candidates feedback loop converges to the target
        top-bin occupancy (~1/T_scale of tracked pages) instead of
        oscillating around outliers.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return np.zeros(0, dtype=bool)
        positive = values > 0.0
        if not positive.any():
            return np.zeros(values.size, dtype=bool)
        if self._width <= 0.0:
            return positive
        vmax = float(values[positive].max())
        threshold = self.top_bin_threshold(vmax)
        if threshold <= 0.0:
            # The whole distribution fits one bin: no prioritisation
            # signal yet; everything positive is a candidate, and the
            # scaling rule will shrink W next round.
            return positive
        return positive & (values >= threshold)

    def debug_info(self) -> Dict[str, float]:
        return {
            "bin_width": self._width,
            "scale_exp": float(self._scale_exp),
            "reservoir_seen": float(self.reservoir.seen),
        }
