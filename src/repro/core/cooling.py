"""PAC cooling mechanisms (§4.3.4, §5.7).

Cooling is deliberately *not* a primary design element of PACT: because
PAC distributions are skewed, newly critical pages rise into the top
bins without explicit decay, and the evaluation shows cooling rarely
helps.  Two mechanisms are still provided for the sensitivity study:

* **EWMA-style alpha** (Algorithm 1 line 8): old PAC is multiplied by
  ``alpha`` on every update of a page.  ``alpha = 1.0`` (pure
  accumulation) is the default.
* **Distance-based in-place cooling**: a page whose last sample is more
  than ``distance_threshold`` global samples ago has its PAC multiplied
  by ``distance_factor`` (0.5 = halve, 0.0 = reset to zero).  Unlike
  global rescans, this costs O(stale pages) per trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.tracker import PacTracker

#: Default sample-distance before in-place cooling triggers (§5.7).
DEFAULT_DISTANCE_THRESHOLD = 200_000


@dataclass(frozen=True)
class CoolingConfig:
    """Cooling parameters; the default disables both mechanisms."""

    #: Algorithm-1 decay applied to old PAC on each page update.
    alpha: float = 1.0
    #: Enable distance-based in-place cooling when set.
    distance_threshold: Optional[int] = None
    #: Multiplier applied to stale pages (0.5 = halve, 0.0 = reset).
    distance_factor: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= self.distance_factor <= 1.0:
            raise ValueError("distance_factor must be in [0, 1]")
        if self.distance_threshold is not None and self.distance_threshold <= 0:
            raise ValueError("distance_threshold must be positive")

    @staticmethod
    def none() -> "CoolingConfig":
        """The paper's default: pure accumulation, no cooling."""
        return CoolingConfig()

    @staticmethod
    def halving(threshold: int = DEFAULT_DISTANCE_THRESHOLD) -> "CoolingConfig":
        """Distance-triggered halving (the 'decay by 2' variant)."""
        return CoolingConfig(distance_threshold=threshold, distance_factor=0.5)

    @staticmethod
    def reset(threshold: int = DEFAULT_DISTANCE_THRESHOLD) -> "CoolingConfig":
        """Distance-triggered reset-to-zero (full recency emphasis)."""
        return CoolingConfig(distance_threshold=threshold, distance_factor=0.0)

    def apply_distance_cooling(self, tracker: PacTracker) -> int:
        """Run the in-place pass if configured; returns pages cooled."""
        if self.distance_threshold is None:
            return 0
        return tracker.cool_distant(self.distance_threshold, self.distance_factor)
