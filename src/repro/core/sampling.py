"""The PAC sampling pipeline (§4.3, Algorithm 1).

Every sampling period (default one 20 ms window) the sampler:

1. reads per-tier MLP from TOR counter deltas: ``MLP = dT1 / dT2``,
2. estimates slow-tier stalls via Equation 1: ``S = k * misses / MLP``,
3. attributes ``S`` across PEBS-sampled pages proportionally to their
   sampled access counts (``S_p = S * A_p / A_t``), or latency-weighted
   when per-record latencies are available (§4.3.7),
4. folds ``S_p`` into the per-page PAC accumulator with optional
   cooling: ``PAC[p] <- alpha * PAC[p] + S_p``.

Periods longer than one window aggregate counter deltas and PEBS
batches before attributing, exactly as a longer perf interval would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.cooling import CoolingConfig
from repro.core.pac import PacModelCoefficients, attribute_stalls
from repro.core.tracker import PacTracker
from repro.sim.policy_api import Observation


@dataclass
class _PeriodAccumulator:
    """Counter deltas and PEBS records gathered within one period."""

    slow_misses: float = 0.0
    tor_occupancy: float = 0.0
    tor_busy: float = 0.0
    slow_bytes: float = 0.0
    cycles: float = 0.0
    pages: Optional[List[np.ndarray]] = None
    counts: Optional[List[np.ndarray]] = None
    latencies: Optional[List[np.ndarray]] = None
    windows: int = 0

    def __post_init__(self) -> None:
        self.pages = []
        self.counts = []
        self.latencies = []


class PacSampler:
    """Algorithm 1 over a stream of window observations."""

    def __init__(
        self,
        tracker: PacTracker,
        coefficients: PacModelCoefficients,
        cooling: Optional[CoolingConfig] = None,
        period_windows: int = 1,
        latency_weighted: bool = False,
        mlp_source: str = "tor",
        slow_latency_ns: float = 190.0,
        freq_ghz: float = 2.2,
    ):
        if period_windows < 1:
            raise ValueError("period must be at least one window")
        if mlp_source not in ("tor", "littles_law"):
            raise ValueError("mlp_source must be 'tor' or 'littles_law'")
        self.tracker = tracker
        self.coefficients = coefficients
        self.cooling = cooling if cooling is not None else CoolingConfig.none()
        self.period_windows = period_windows
        self.latency_weighted = latency_weighted
        #: MLP measurement path: ``"tor"`` uses CHA/TOR occupancy deltas
        #: (Intel); ``"littles_law"`` estimates MLP as latency x
        #: bandwidth / 64B from link-byte counters (the AMD path,
        #: §4.2.2).  The latter overestimates absolute MLP (prefetch
        #: bytes) but tracks its temporal variation, which is what PAC
        #: needs; calibration of ``k`` absorbs the constant factor.
        self.mlp_source = mlp_source
        self.slow_latency_ns = slow_latency_ns
        self.freq_ghz = freq_ghz
        self._acc = _PeriodAccumulator()
        #: Most recent period's estimated slow-tier stalls and MLP.
        self.last_stall_estimate = 0.0
        self.last_mlp = 1.0

    def ingest(self, obs: Observation) -> bool:
        """Fold one window in; True when a full period was attributed."""
        acc = self._acc
        # "Slow" aggregates every tier below tier 0 (one term on the
        # default pair; per-tier adds in nearest-first order beyond).
        for tier in obs.lower_tiers:
            acc.slow_misses += obs.perf.llc_misses.get(tier, 0.0)
            acc.tor_occupancy += obs.tor_occupancy_delta.get(tier, 0.0)
            acc.tor_busy += obs.tor_busy_delta.get(tier, 0.0)
            acc.slow_bytes += obs.perf.bytes.get(tier, 0.0)
        acc.cycles += obs.window_cycles
        if obs.pebs.pages.size:
            acc.pages.append(obs.pebs.pages)
            acc.counts.append(obs.pebs.counts)
            if obs.pebs.latencies is not None:
                acc.latencies.append(obs.pebs.latencies)
        acc.windows += 1
        if acc.windows < self.period_windows:
            return False
        self._attribute(acc)
        self._acc = _PeriodAccumulator()
        return True

    # -- Algorithm 1 core -----------------------------------------------------------

    def _attribute(self, acc: _PeriodAccumulator) -> None:
        # Line 1: per-tier MLP from aggregated counter deltas.
        if self.mlp_source == "tor":
            mlp = acc.tor_occupancy / acc.tor_busy if acc.tor_busy > 0 else 1.0
        else:
            from repro.hw.cha import littles_law_mlp

            duration_ns = acc.cycles / self.freq_ghz
            mlp = littles_law_mlp(acc.slow_bytes, self.slow_latency_ns, duration_ns)
        mlp = max(mlp, 1.0)
        # Line 2: Equation-1 slow-tier stall estimate.
        stalls = self.coefficients.tier_stalls(acc.slow_misses, mlp)
        self.last_mlp = mlp
        self.last_stall_estimate = stalls
        if not acc.pages:
            return
        pages, counts, latencies = self._merge(acc)
        # Lines 5-8: proportional (or latency-weighted) attribution.
        weights_latencies = latencies if self.latency_weighted else None
        attributed = attribute_stalls(stalls, counts, weights_latencies)
        self.tracker.update(pages, attributed, counts, alpha=self.cooling.alpha)
        self.cooling.apply_distance_cooling(self.tracker)

    @staticmethod
    def _merge(acc: _PeriodAccumulator):
        """Merge per-window PEBS batches into one page-indexed set.

        Sort-based grouping instead of ``np.unique(return_inverse=True)``
        (hash-dominated at these sizes): a stable argsort groups each
        page's records while preserving their within-page input order,
        so segment reductions see the records in exactly the order the
        scatter-add used to -- integer count sums are order-free anyway,
        and the latency fold (floats) keeps bit-identical rounding.
        """
        pages = np.concatenate(acc.pages)
        counts = np.concatenate(acc.counts)
        order = np.argsort(pages, kind="stable")
        ordered = pages[order]
        keep = np.empty(ordered.size, dtype=bool)
        keep[0] = True
        np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
        starts = np.flatnonzero(keep)
        uniq = ordered[starts]
        merged = np.add.reduceat(counts[order], starts)
        latencies = None
        if acc.latencies and len(acc.latencies) == len(acc.pages):
            lat = np.concatenate(acc.latencies)
            weighted = np.add.reduceat((lat * counts)[order], starts)
            latencies = weighted / np.maximum(merged, 1)
        return uniq, merged, latencies
