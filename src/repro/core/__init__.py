"""PACT core: PAC model, sampling, tracking, binning, migration policy."""

from repro.core.binning import AdaptiveBinner
from repro.core.calibration import CalibrationPoint, calibrate_k, collect_points
from repro.core.cooling import CoolingConfig, DEFAULT_DISTANCE_THRESHOLD
from repro.core.pac import PacModelCoefficients, attribute_stalls, fit_k
from repro.core.pact import FrequencyPolicy, PactPolicy
from repro.core.policy import MigrationPlanner
from repro.core.sampling import PacSampler
from repro.core.tracker import PacTracker

__all__ = [
    "AdaptiveBinner",
    "CalibrationPoint",
    "CoolingConfig",
    "DEFAULT_DISTANCE_THRESHOLD",
    "FrequencyPolicy",
    "MigrationPlanner",
    "PacModelCoefficients",
    "PacSampler",
    "PacTracker",
    "PactPolicy",
    "attribute_stalls",
    "calibrate_k",
    "collect_points",
    "fit_k",
]
