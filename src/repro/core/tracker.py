"""PAC tracking state: per-page accumulated criticality and metadata.

The kernel prototype keeps a hash table of 25-byte records per tracked
4KB page (§4.3.6, §4.6) for constant-time insert/lookup.  The simulator
knows the footprint up front, so the same semantics are provided by
dense numpy arrays indexed by page id (functionally a perfect hash);
the public API mirrors hash-table usage: pages enter tracking on first
sample, can be dropped, and can be enumerated.

Each tracked page records:

* accumulated PAC (stall cycles attributed, Algorithm 1 line 8),
* accumulated access frequency (PEBS record counts -- kept both as PAC
  metadata and to drive the frequency-only ablation policy of §5.6),
* the global sample counter at its last update (for distance-based
  in-place cooling, §5.7).
"""

from __future__ import annotations

import numpy as np

from repro.common.arrays import merge_sorted_unique, sorted_unique


class PacTracker:
    """Per-page PAC accumulation over a fixed footprint.

    The tracked-page *set* is maintained incrementally: ``update``
    merges newly seen pages into a sorted id list (O(new + tracked)
    only when new pages actually appear, O(new) to discover there are
    none), so per-window queries -- ``tracked_pages``, ``len``,
    ``cool_distant`` -- cost O(tracked) or O(1) instead of rescanning
    the whole footprint.  The list is bit-identical to
    ``np.flatnonzero(self.tracked)`` at all times (the incremental
    property test pins this across cooling epochs and drops).
    """

    def __init__(self, footprint_pages: int):
        if footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        self.footprint_pages = footprint_pages
        self.pac = np.zeros(footprint_pages, dtype=float)
        self.frequency = np.zeros(footprint_pages, dtype=float)
        self.tracked = np.zeros(footprint_pages, dtype=bool)
        self.last_sample_counter = np.zeros(footprint_pages, dtype=np.int64)
        #: Global PEBS-record counter (drives distance-based cooling).
        self.sample_counter = 0
        #: Sorted ids of tracked pages, maintained by the mutators.
        self._tracked_list = np.empty(0, dtype=np.int64)
        #: True when ``drop`` invalidated the list (rebuilt lazily).
        self._tracked_dirty = False

    def __len__(self) -> int:
        if self._tracked_dirty:
            self._rebuild_tracked()
        return int(self._tracked_list.size)

    def _rebuild_tracked(self) -> None:
        self._tracked_list = np.flatnonzero(self.tracked).astype(np.int64)
        self._tracked_dirty = False

    # -- updates -----------------------------------------------------------------

    def update(
        self,
        pages: np.ndarray,
        attributed_stalls: np.ndarray,
        access_counts: np.ndarray,
        alpha: float = 1.0,
    ) -> None:
        """Fold one window's attribution into the tracked state.

        ``alpha`` is the Algorithm-1 cooling factor applied to the old
        PAC before adding the new contribution: 1.0 = pure accumulation
        (the paper's robust default), smaller values emphasise recency.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        self.pac[pages] = alpha * self.pac[pages] + np.asarray(attributed_stalls, dtype=float)
        self.frequency[pages] += np.asarray(access_counts, dtype=float)
        fresh = pages[~self.tracked[pages]]
        if fresh.size:
            self.tracked[fresh] = True
            if self._tracked_dirty:
                self._rebuild_tracked()
            else:
                self._tracked_list = merge_sorted_unique(
                    self._tracked_list, sorted_unique(fresh)
                )
        self.sample_counter += int(np.asarray(access_counts).sum())
        self.last_sample_counter[pages] = self.sample_counter

    def cool_distant(self, distance_threshold: int, factor: float) -> int:
        """In-place cooling (§5.7): decay pages not sampled recently.

        Pages whose last capture is more than ``distance_threshold``
        samples behind the global counter have their PAC multiplied by
        ``factor`` (0.5 = halve, 0.0 = reset).  Returns pages cooled.
        Walks the tracked-page list (pages off it can never be stale),
        not the whole footprint.
        """
        if distance_threshold <= 0:
            raise ValueError("distance threshold must be positive")
        tracked = self.tracked_pages()
        stale = (
            self.sample_counter - self.last_sample_counter[tracked]
        ) > distance_threshold
        count = int(stale.sum())
        if count:
            idx = tracked[stale]
            self.pac[idx] *= factor
            # Re-stamp so a page is cooled once per staleness episode.
            self.last_sample_counter[idx] = self.sample_counter
        return count

    def drop(self, pages: np.ndarray) -> None:
        """Forget pages entirely (hash-table deletion)."""
        pages = np.asarray(pages, dtype=np.int64)
        self.pac[pages] = 0.0
        self.frequency[pages] = 0.0
        self.tracked[pages] = False
        self.last_sample_counter[pages] = 0
        # Deletion is rare (the policies only ever add); rebuild lazily.
        self._tracked_dirty = True

    # -- queries -----------------------------------------------------------------

    def tracked_pages(self) -> np.ndarray:
        """Sorted ids of all tracked pages (treat as read-only).

        Served from the incrementally maintained list; identical to
        ``np.flatnonzero(self.tracked)``.
        """
        if self._tracked_dirty:
            self._rebuild_tracked()
        return self._tracked_list

    def values_for(self, pages: np.ndarray, metric: str = "pac") -> np.ndarray:
        """Per-page metric values; ``metric`` is 'pac' or 'frequency'."""
        pages = np.asarray(pages, dtype=np.int64)
        if metric == "pac":
            return self.pac[pages]
        if metric == "frequency":
            return self.frequency[pages]
        raise ValueError("metric must be 'pac' or 'frequency'")

    def memory_overhead_bytes(self, bytes_per_record: int = 25) -> int:
        """Tracking overhead at the prototype's 25 B/page record (§4.6)."""
        return len(self) * bytes_per_record
