"""PACT: the criticality-first tiered memory policy (§4).

Ties the pieces together into a :class:`repro.sim.policy_api.TieringPolicy`:

* :class:`~repro.core.sampling.PacSampler` -- Algorithm 1 PAC profiling
  from PEBS samples plus TOR/perf counter deltas,
* :class:`~repro.core.tracker.PacTracker` -- per-page PAC state,
* :class:`~repro.core.binning.AdaptiveBinner` -- Algorithm 3 reservoir +
  Freedman-Diaconis + scaling candidate selection,
* :class:`~repro.core.policy.MigrationPlanner` -- Algorithm 2 eager
  demotion and immediate top-bin promotion.

PACT migrates in the background (two dedicated threads in the kernel
prototype, §4.6), so only an interference fraction of migration cost
lands on the application's critical path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.stats import quantiles_linear
from repro.common.units import PAGES_PER_HUGE_PAGE
from repro.core.binning import AdaptiveBinner
from repro.core.cooling import CoolingConfig
from repro.core.pac import PacModelCoefficients
from repro.core.policy import MigrationPlanner
from repro.core.sampling import PacSampler
from repro.core.tracker import PacTracker
from repro.mem.page import Tier
from repro.obs.profiler import null_profile as _null_profile
from repro.sim.policy_api import Decision, Observation, TieringPolicy

#: Swap-profitability bar samples the 90th percentile of demoted values.
_BAR_QS = np.array([0.9])


def _top_k_indices(values: np.ndarray, k: int) -> Optional[np.ndarray]:
    """Indices of the ``k`` largest ``values`` via partial selection.

    Returns ``None`` when values equal to the k-th largest straddle the
    selection boundary: the winning subset is then decided by sort-order
    tie-breaking, so the caller must fall back to the legacy full sort to
    keep the selected *set* identical to the pre-top-k code.  With no
    boundary tie the partitioned set provably equals the sorted prefix
    (everything excluded is strictly smaller than everything included),
    and downstream consumers only use the set -- ``MigrationEngine``
    re-sorts via ``np.unique`` before moving pages.
    """
    n = values.size
    if k >= n:
        return np.argsort(values)[::-1]
    split = n - k
    part = np.argpartition(values, split)
    kth = values[part[split]]
    if (values[part[:split]] == kth).any():
        return None
    top = part[split:]
    return top[np.argsort(values[top])[::-1]]


class PactPolicy(TieringPolicy):
    """The full PACT system as a pluggable tiering policy."""

    name = "PACT"
    synchronous_migration = False  # background migration thread (§4.6)
    #: PACT's candidates come from PEBS/CHMU samples and LRU state, not
    #: from the per-window touched-page sets.
    needs_touched_pages = False

    def __init__(
        self,
        metric: str = "pac",
        period_windows: int = 1,
        m: int = 0,
        num_bins: int = 20,
        reservoir_size: int = 100,
        t_scale: float = 50.0,
        cooling: Optional[CoolingConfig] = None,
        adaptive_binning: bool = True,
        scaling: bool = True,
        latency_weighted: bool = False,
        coefficients: Optional[PacModelCoefficients] = None,
        promotion_cooldown_windows: int = 20,
        mlp_source: str = "tor",
        access_sampler: str = "pebs",
        seed: int = 42,
    ):
        if metric not in ("pac", "frequency"):
            raise ValueError("metric must be 'pac' or 'frequency'")
        if access_sampler not in ("pebs", "chmu"):
            raise ValueError("access_sampler must be 'pebs' or 'chmu'")
        self.metric = metric
        #: "tor" (Intel CHA/TOR counters) or "littles_law" (the AMD
        #: portability path of §4.2.2 -- latency x bandwidth / 64B).
        self.mlp_source = mlp_source
        #: "pebs" host sampling or "chmu" controller-side counting
        #: (CXL 3.2 Hotness Monitoring Unit, §4.3.5).
        self.access_sampler = access_sampler
        self.period_windows = period_windows
        self.m = m
        self.num_bins = num_bins
        self.reservoir_size = reservoir_size
        self.t_scale = t_scale
        self.cooling = cooling if cooling is not None else CoolingConfig.none()
        self.adaptive_binning = adaptive_binning
        self.scaling = scaling
        self.latency_weighted = latency_weighted
        self.wants_pebs_latency = latency_weighted
        self._coefficients = coefficients
        #: A page promoted once is not re-promoted for this many windows
        #: if it gets demoted again -- bounds promotion/demotion cycling
        #: when PAC accumulation races placement.
        self.promotion_cooldown_windows = promotion_cooldown_windows
        self._seed = seed
        # Built at attach time (they need the footprint / tier specs).
        self.tracker: Optional[PacTracker] = None
        self.sampler: Optional[PacSampler] = None
        self.binner: Optional[AdaptiveBinner] = None
        self.planner: Optional[MigrationPlanner] = None
        self._last_candidate_count = 0
        self._last_top_occupancy = 0
        self._profile = _null_profile

    # -- lifecycle ------------------------------------------------------------------

    def attach(self, machine) -> None:
        coefficients = self._coefficients
        if coefficients is None:
            coefficients = PacModelCoefficients.default_for(machine.config.slow_spec)
        self.tracker = PacTracker(machine.workload.footprint_pages)
        self.sampler = PacSampler(
            tracker=self.tracker,
            coefficients=coefficients,
            cooling=self.cooling,
            period_windows=self.period_windows,
            latency_weighted=self.latency_weighted,
            mlp_source=self.mlp_source,
            slow_latency_ns=machine.config.slow_spec.latency_ns,
            freq_ghz=machine.config.freq_ghz,
        )
        self.binner = AdaptiveBinner(
            num_bins=self.num_bins,
            reservoir_size=self.reservoir_size,
            t_scale=self.t_scale,
            adaptive=self.adaptive_binning,
            scaling=self.scaling,
            rng=np.random.default_rng(self._seed),
        )
        self.planner = MigrationPlanner(m=self.m)
        self._thp = machine.config.thp
        self.planner.unit_pages = 512 if self._thp else 1
        self._last_candidate_count = 0
        self._last_top_occupancy = 0
        self._promoted_at = np.full(machine.workload.footprint_pages, -(10**9), dtype=np.int64)
        self._current_window = 0
        self._cold_fraction = machine.config.cold_activity_fraction
        self._eviction_bar = 0.0
        self._bar_margin = 1.25
        #: EWMA gain shared by the bar's victim-value updates and its
        #: decay on demotion-free planning windows.
        self._bar_gain = 0.2
        self._demoted_since_plan = False
        # Publish adaptivity gauges when the machine carries observability.
        obs = getattr(machine, "obs", None)
        self._obs = obs if obs is not None and obs.enabled else None
        #: Span handle for the policy_track/policy_bin/policy_select
        #: children of the machine's policy_observe span (a no-op span
        #: factory when observability is off).
        self._profile = obs.profile if obs is not None else _null_profile

    # -- per-window policy -------------------------------------------------------------

    def observe(self, obs: Observation) -> Decision:
        with self._profile("policy_track"):
            period_complete = self.sampler.ingest(obs)
        if not period_complete:
            return Decision.none()
        self._decay_eviction_bar()
        with self._profile("policy_bin"):
            binned = self._bin_values()
        with self._profile("policy_select"):
            candidates = self._rank_candidates(obs, binned)
            decision = self.planner.plan(candidates, obs)
        if self._obs is not None:
            self._obs.gauge("pact/eviction_bar", self._eviction_bar)
            self._obs.gauge("pact/top_bin_occupancy", float(self._last_top_occupancy))
            self._obs.gauge("pact/candidates", float(self._last_candidate_count))
        return decision

    def _decay_eviction_bar(self) -> None:
        """Relax the swap-profitability bar on demotion-free windows.

        The bar is EWMA-updated only when demotions occur, so a single
        demotion burst used to pin it high through arbitrarily long
        quiet phases, suppressing promotions indefinitely.  Planning
        windows that saw no demotions now pull it toward zero with the
        same gain, modelling the victim-value estimate going stale.
        """
        if not self._demoted_since_plan and self._eviction_bar > 0.0:
            self._eviction_bar += self._bar_gain * (0.0 - self._eviction_bar)
            if self._eviction_bar < 1e-12:
                self._eviction_bar = 0.0
        self._demoted_since_plan = False

    def _bin_values(self) -> "Optional[tuple]":
        """The binning stage: fold tracked values into the reservoir,
        adapt the width, and mark the highest-priority bin.

        The positive mask is computed once and shared between the
        reservoir feed and the top-bin selection, and the bin edge comes
        from :meth:`AdaptiveBinner.top_bin_threshold` -- one threshold
        compare instead of re-deriving the positive set and maximum a
        second time inside ``top_bin_mask``.  Returns ``(tracked,
        values, top_mask)`` or ``None`` when nothing is tracked yet.
        """
        tracked = self.tracker.tracked_pages()
        if tracked.size == 0:
            return None
        values = self.tracker.values_for(tracked, metric=self.metric)
        positive = values > 0.0
        n_positive = int(np.count_nonzero(positive))
        all_positive = n_positive == values.size
        positive_values = values if all_positive else values[positive]
        self.binner.observe(
            values,
            n_tracked=tracked.size,
            n_candidates=max(self._last_top_occupancy, 1),
            positive_values=positive_values,
        )
        if n_positive == 0:
            top_mask = np.zeros(values.size, dtype=bool)
        else:
            threshold = self.binner.top_bin_threshold(float(positive_values.max()))
            if threshold <= 0.0:
                top_mask = positive
            elif all_positive:
                # values >= threshold > 0 already implies positivity.
                top_mask = values >= threshold
            else:
                top_mask = positive & (values >= threshold)
        self._last_top_occupancy = int(np.count_nonzero(top_mask))
        return tracked, values, top_mask

    def _rank_candidates(self, obs: Observation, binned: "Optional[tuple]") -> np.ndarray:
        """Adaptive promotion: pages in the highest-priority bin that are
        currently resident in the slow tier (§4.5).

        The scaling feedback targets *top-bin occupancy* over all
        tracked pages (already-promoted pages keep their accumulated PAC
        and anchor the bin): a slow page is promoted only when its PAC
        genuinely climbs into the top bin, not because the policy must
        manufacture a steady candidate stream.
        """
        if binned is None:
            return np.empty(0, dtype=np.int64)
        tracked, values, top_mask = binned
        in_slow = obs.memory.tier_of(tracked) >= 1
        cooled_down = (
            obs.window - self._promoted_at[tracked] > self.promotion_cooldown_windows
        )
        eligible = in_slow & cooled_down
        if self._eviction_bar > 0.0:
            # Swap profitability: promoting a page whose criticality is
            # no higher than what eager demotion is currently evicting
            # just rotates interchangeable pages.  The bar tracks the
            # value of recent demotion victims; candidates must beat it.
            eligible &= values > self._eviction_bar * self._bar_margin
        self._current_window = obs.window

        # Algorithm 2 keeps pulling pages while B_priority is non-empty:
        # once the top bin's slow pages promote, the next bin becomes the
        # highest non-empty one.  Equivalent batched form: take the top
        # bin, then extend down the PAC ranking while reclaimable
        # fast-tier space remains this window.  The extension is part of
        # the scaling optimisation ('+Both', §4.5): without it,
        # promotion supply depends entirely on the histogram width and
        # becomes erratic under skew -- exactly the instability the
        # paper's breakdown study demonstrates.
        core = int((top_mask & eligible).sum())
        cap = self._window_promotion_cap(obs)
        if self.scaling:
            # The scaling optimisation stabilises candidate supply: offer
            # up to the per-window cap from the PAC ranking.  Actual
            # promotions stay profitable because eligibility already
            # requires beating the eviction bar (and the cooldown).
            want = cap
        else:
            want = core
        # §4.5: the highest-priority bin supplies a *bounded* stream of
        # candidates -- no sudden migration storms even when the width
        # adaptation transiently degenerates (uniform PAC, cold start).
        want = min(want, cap)
        elig_pages = tracked[eligible]
        elig_values = values[eligible]
        if elig_pages.size == 0 or want <= 0:
            self._last_candidate_count = 0
            return np.empty(0, dtype=np.int64)
        if self._thp:
            # Migration moves whole 2MB regions: rank huge pages by
            # their hottest constituent page and budget in whole units.
            # The budget stays clamped to the per-window cap in 4KB
            # pages: when the cap cannot fit even one huge page (tiny
            # fast tiers), promote nothing rather than overshoot the
            # migration bound by flooring the budget up to 2MB.
            # ``elig_pages`` is ascending (tracked_pages order), so each
            # huge page is one contiguous run and reduceat yields its
            # peak PAC without sorting all pages.
            want //= PAGES_PER_HUGE_PAGE
            huge = elig_pages >> 9
            starts = np.flatnonzero(np.r_[True, huge[1:] != huge[:-1]])
            if want <= 0:
                candidates = np.empty(0, dtype=np.int64)
            else:
                peaks = np.maximum.reduceat(elig_values, starts)
                top = _top_k_indices(peaks, want)
                if top is None:
                    # Peak ties straddle the boundary: reproduce the
                    # legacy full ranking (sort pages, dedupe per huge
                    # page by first occurrence) bit-for-bit.
                    order = np.argsort(elig_values)[::-1]
                    ranked = elig_pages[order]
                    _, first = np.unique(ranked >> 9, return_index=True)
                    candidates = ranked[np.sort(first)][:want]
                else:
                    # Any resident page stands for its huge page: the
                    # engine expands promotions to the whole 2MB region.
                    candidates = elig_pages[starts[top]]
        else:
            top = _top_k_indices(elig_values, want)
            if top is None:
                candidates = elig_pages[np.argsort(elig_values)[::-1]][:want]
            else:
                candidates = elig_pages[top]
        self._last_candidate_count = int(candidates.size)
        return candidates

    def _space_budget(self, obs: Observation) -> int:
        """Fast-tier pages obtainable this window: free space plus pages
        the kernel's LRU would classify as inactive (demotable).

        The cold count comes from :meth:`TieredMemory.cold_count` -- the
        memoised per-tier form of the old ``activity[fast_pages]``
        gather-and-compare, answered O(1) for repeated queries within a
        window.
        """
        memory = obs.memory
        free_now = memory.free_pages(Tier.FAST)
        threshold = self._cold_fraction * memory.mean_activity(Tier.FAST)
        cold = memory.cold_count(Tier.FAST, threshold)
        return free_now + cold

    def _window_promotion_cap(self, obs: Observation) -> int:
        """Per-window migration bound: a few percent of the fast tier
        (with a floor for tiny configurations), keeping promotion bursts
        spread over multiple windows."""
        return max(int(0.08 * obs.memory.capacity[Tier.FAST]), 64)

    def on_migration(self, outcome) -> None:
        """Stamp the cooldown clock and update the swap-profitability bar."""
        if outcome.promoted_pages.size:
            self._promoted_at[outcome.promoted_pages] = self._current_window
        if outcome.demoted_pages.size and self.tracker is not None:
            self._demoted_since_plan = True
            victim_values = self.tracker.values_for(outcome.demoted_pages, metric=self.metric)
            bar_sample = float(quantiles_linear(victim_values, _BAR_QS)[0])
            self._eviction_bar += self._bar_gain * (bar_sample - self._eviction_bar)

    # -- introspection -------------------------------------------------------------------

    def debug_info(self) -> Dict[str, float]:
        info: Dict[str, float] = {
            "candidates": float(self._last_candidate_count),
            "tracked": float(len(self.tracker)) if self.tracker else 0.0,
            "eviction_bar": float(getattr(self, "_eviction_bar", 0.0)),
        }
        if self.binner is not None:
            info.update(self.binner.debug_info())
        if self.sampler is not None:
            info["est_slow_stalls"] = self.sampler.last_stall_estimate
            info["est_slow_mlp"] = self.sampler.last_mlp
        return info


class FrequencyPolicy(PactPolicy):
    """The §5.6 ablation: PACT's framework, ranking by access frequency.

    Everything -- sampling, binning, eager demotion -- is identical;
    only the per-page metric fed to the binner changes from accumulated
    PAC to accumulated PEBS access counts, mirroring conventional
    hotness-based selection.
    """

    name = "Frequency"

    def __init__(self, **kwargs):
        kwargs["metric"] = "frequency"
        super().__init__(**kwargs)
