"""Offline calibration of the Equation-1 coefficient ``k``.

The paper fits ``k`` per hardware configuration from counter traces
(§4.2.1): it captures loaded latency, memory-controller queueing, and
architectural constants, and is strongly workload-independent.  The
calibrator here replays a set of workloads entirely on one tier,
collects per-window (LLC-misses / MLP, stall-cycles) points from the
*counters* (never ground truth), and fits the least-squares slope
through the origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.pac import PacModelCoefficients, fit_k
from repro.mem.page import Tier
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.policy_api import Decision, Observation, TieringPolicy
from repro.workloads.base import Workload


@dataclass
class CalibrationPoint:
    """One observation interval of the calibration trace."""

    workload: str
    llc_misses: float
    mlp: float
    stall_cycles: float

    @property
    def misses_over_mlp(self) -> float:
        return self.llc_misses / self.mlp


class _CounterProbe(TieringPolicy):
    """A passive policy that records counter deltas and never migrates."""

    name = "probe"
    synchronous_migration = False
    needs_pebs = False
    needs_touched_pages = False

    def __init__(self, tier: Tier):
        self.tier = tier
        self.points: List[CalibrationPoint] = []
        self._workload_name = ""

    def attach(self, machine) -> None:
        self._workload_name = machine.workload.name

    def observe(self, obs: Observation) -> Decision:
        misses = obs.perf.llc_misses.get(self.tier, 0.0)
        if misses > 0:
            self.points.append(
                CalibrationPoint(
                    workload=self._workload_name,
                    llc_misses=misses,
                    mlp=obs.tor_mlp.get(self.tier, 1.0),
                    stall_cycles=obs.perf.stall_cycles.get(self.tier, 0.0),
                )
            )
        return Decision.none()


def collect_points(
    workloads: Sequence[Workload],
    config: Optional[MachineConfig] = None,
    tier: Tier = Tier.SLOW,
    max_windows_each: int = 30,
    seed: int = 0,
) -> List[CalibrationPoint]:
    """Run workloads pinned to one tier and record counter points."""
    config = config if config is not None else MachineConfig()
    points: List[CalibrationPoint] = []
    for workload in workloads:
        probe = _CounterProbe(tier)
        fast_cap = workload.footprint_pages if tier == Tier.FAST else 0
        machine = Machine(
            workload=workload,
            policy=probe,
            config=config,
            fast_capacity_override=fast_cap,
            seed=seed,
        )
        machine.run(max_windows=max_windows_each)
        points.extend(probe.points)
    return points


def calibrate_k(
    workloads: Sequence[Workload],
    config: Optional[MachineConfig] = None,
    tier: Tier = Tier.SLOW,
    max_windows_each: int = 30,
    seed: int = 0,
) -> PacModelCoefficients:
    """Fit Equation 1's ``k`` for ``tier`` on the given workload set."""
    points = collect_points(workloads, config, tier, max_windows_each, seed)
    if not points:
        raise ValueError("calibration produced no observation points")
    k = fit_k(
        [p.misses_over_mlp for p in points],
        [p.stall_cycles for p in points],
    )
    return PacModelCoefficients(k_cycles=k)
